//! Galton–Watson workload model of the branch-and-bound search tree.
//!
//! The search tree Gentrius explores is a branching process: a state at
//! insertion position `d` (that many taxa placed on the agile tree) has
//! as many children as the next taxon has admissible branches — possibly
//! zero (a dead end). Fitting a per-depth-stratum offspring distribution
//! from a cheap, budget-capped serial profiling run yields a predictive
//! model in the spirit of the *Parallel Galton–Watson Process* analysis:
//!
//! * expected population per depth (`Z_{d+1} = Z_d · m_d`), hence
//!   expected stand-tree, intermediate-state and dead-end totals with
//!   log-space confidence bands from per-stratum standard errors;
//! * expected scaling per thread count, by replaying the engine's split
//!   policy (serial DFS within a task, stealable siblings only where the
//!   §III-A rule allows: ≥ 2 pending and ≥ `MIN_REMAINING` taxa left) on
//!   a deterministic synthetic tree drawn from the fitted offspring
//!   histograms. This reproduces the Fig. 5a plateau — a mean-value
//!   bound like Brent's would predict near-linear scaling for chain-
//!   shaped trees and mis-gate the bench.
//!
//! Everything is a pure function of the profile: fitting twice, or
//! predicting twice, yields identical results (no RNG, no clocks).

use gentrius_core::explore::{Explorer, StepEvent};
use gentrius_core::state::SearchState;
use gentrius_core::{CountOnly, GentriusConfig, ProblemError, StandProblem};
use std::collections::BTreeMap;

/// The engine's §III-A split cut-off (the default of
/// `min_remaining_for_split` in both the parallel engine and the
/// simulator): frames with fewer remaining taxa below them are never
/// split into tasks.
pub const MIN_REMAINING_FOR_SPLIT: usize = 3;

/// Node cap for the synthetic scheduling tree: far beyond the point where
/// scaling estimates stabilize, small enough to build in microseconds.
const SYNTH_NODE_CAP: usize = 150_000;

/// Per-stratum observations from a profiling run. Stratum `position` `d`
/// holds the nodes whose insertion made the `d`-th missing taxon concrete
/// (`1..=depth`); nodes at the final position are stand trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StratumStats {
    /// 1-based insertion position of the stratum.
    pub position: usize,
    /// Nodes observed at this position (entered states + dead ends, or
    /// stand trees at the final position).
    pub nodes: u64,
    /// Dead ends observed at this position.
    pub dead_ends: u64,
    /// Offspring histogram: `children -> count`. Dead ends contribute the
    /// zero bucket; the final position has no offspring.
    pub offspring: BTreeMap<u32, u64>,
}

impl StratumStats {
    fn new(position: usize) -> Self {
        StratumStats {
            position,
            nodes: 0,
            dead_ends: 0,
            offspring: BTreeMap::new(),
        }
    }

    fn record(&mut self, children: u32, dead: bool) {
        self.nodes += 1;
        if dead {
            self.dead_ends += 1;
        }
        *self.offspring.entry(children).or_insert(0) += 1;
    }
}

/// A budget-capped serial profile of one instance's search tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchProfile {
    /// Number of missing taxa = number of insertion positions.
    pub depth: usize,
    /// Admissible branches of the root state's first taxon (`Z_1`).
    pub root_offspring: u64,
    /// Per-position observations, indexed `position - 1`.
    pub strata: Vec<StratumStats>,
    /// Events consumed (entered + dead ends + stand trees).
    pub events: u64,
    /// True when the budget truncated the run before exhaustion.
    pub truncated: bool,
}

/// Runs a serial, budget-capped exploration and records per-stratum
/// offspring observations. Mirrors `run_serial`'s setup (initial tree,
/// taxon order, mapping engine) so the profiled tree is the same tree the
/// engines search. DFS descends to full depth immediately, so even small
/// budgets populate every stratum.
pub fn profile_search(
    problem: &StandProblem,
    config: &GentriusConfig,
    max_events: u64,
) -> Result<SearchProfile, ProblemError> {
    let initial = problem.initial_tree_index(&config.initial_tree)?;
    let mut state = SearchState::new(problem, initial, &config.taxon_order)
        .map_err(ProblemError::BadTaxonOrder)?;
    state.enable_mapping(config.mapping);
    let depth = problem.all_taxa().count() - problem.constraints()[initial].taxa().count();
    let mut ex = Explorer::new_root(state);
    let root_offspring = ex.top().map(|f| f.branches.len() as u64).unwrap_or(0);
    let mut strata: Vec<StratumStats> = (1..=depth).map(StratumStats::new).collect();
    let mut events = 0u64;
    let mut sink = CountOnly;
    let mut truncated = false;
    loop {
        // Position of the node the next step materializes: the pre-step
        // stack length (the root frame sits at depth 1 / position 1).
        let position = ex.depth();
        match ex.step(&mut sink) {
            StepEvent::Entered => {
                let children = ex.top().map(|f| f.branches.len() as u32).unwrap_or(0);
                strata[position - 1].record(children, false);
                events += 1;
            }
            StepEvent::DeadEnd => {
                strata[position - 1].record(0, true);
                events += 1;
            }
            StepEvent::StandTree => {
                if position >= 1 && position <= strata.len() {
                    strata[position - 1].record(0, false);
                }
                events += 1;
            }
            StepEvent::Backtracked => {}
            StepEvent::Finished => break,
        }
        if events >= max_events {
            truncated = true;
            break;
        }
    }
    Ok(SearchProfile {
        depth,
        root_offspring,
        strata,
        events,
        truncated,
    })
}

/// One fitted stratum of the Galton–Watson model.
#[derive(Clone, Debug, PartialEq)]
pub struct GwStratum {
    /// 1-based insertion position.
    pub position: usize,
    /// Observations the fit is based on.
    pub n: u64,
    /// Mean offspring (branching factor) of nodes at this position.
    pub mean: f64,
    /// Offspring standard deviation.
    pub sd: f64,
    /// Dead-end probability (offspring = 0).
    pub p_dead: f64,
    /// Offspring histogram as fractions, `(children, probability)`.
    pub hist: Vec<(u32, f64)>,
}

/// The fitted per-instance-class Galton–Watson model.
#[derive(Clone, Debug, PartialEq)]
pub struct GwModel {
    /// Number of insertion positions.
    pub depth: usize,
    /// Root branching (`Z_1`).
    pub root_offspring: u64,
    /// Fitted strata for positions `1..depth` (the final position bears
    /// stand trees, not offspring).
    pub strata: Vec<GwStratum>,
}

/// Count predictions with a multiplicative confidence band.
#[derive(Clone, Debug, PartialEq)]
pub struct CountPrediction {
    /// Expected stand trees (`Z_depth`).
    pub stand_trees: f64,
    /// Expected intermediate states (`Σ_{d<depth} Z_d`).
    pub intermediate_states: f64,
    /// Expected dead ends (`Σ Z_d · p_dead_d`).
    pub dead_ends: f64,
    /// Expected population per position, `Z_1..Z_depth`.
    pub depth_profile: Vec<f64>,
    /// Multiplicative band: measured/predicted within `[1/band, band]` is
    /// consistent with the fit (log-space, two-sigma per-stratum standard
    /// errors compounded along the depth profile, with an inflation floor
    /// for the DFS-truncation bias of capped profiles).
    pub band: f64,
}

impl GwModel {
    /// Fits per-stratum offspring distributions from a profile. Pure:
    /// identical profiles yield identical models.
    pub fn fit(profile: &SearchProfile) -> GwModel {
        let strata = profile
            .strata
            .iter()
            .take(profile.depth.saturating_sub(1))
            .map(|s| {
                let n = s.nodes;
                let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
                for (&k, &c) in &s.offspring {
                    sum += k as f64 * c as f64;
                    sumsq += (k as f64) * (k as f64) * c as f64;
                }
                let nf = (n as f64).max(1.0);
                let mean = sum / nf;
                let var = (sumsq / nf - mean * mean).max(0.0);
                let hist = s
                    .offspring
                    .iter()
                    .map(|(&k, &c)| (k, c as f64 / nf))
                    .collect();
                GwStratum {
                    position: s.position,
                    n,
                    mean,
                    sd: var.sqrt(),
                    p_dead: s.dead_ends as f64 / nf,
                    hist,
                }
            })
            .collect();
        GwModel {
            depth: profile.depth,
            root_offspring: profile.root_offspring,
            strata,
        }
    }

    /// Expected per-position populations and event totals, with the
    /// fitted confidence band.
    pub fn predict_counts(&self) -> CountPrediction {
        if self.depth == 0 {
            return CountPrediction {
                stand_trees: 1.0,
                intermediate_states: 0.0,
                dead_ends: 0.0,
                depth_profile: Vec::new(),
                band: 1.5,
            };
        }
        let mut depth_profile = Vec::with_capacity(self.depth);
        let mut z = self.root_offspring as f64;
        depth_profile.push(z);
        let mut log_var = 0.0f64;
        let mut dead = 0.0f64;
        for s in &self.strata {
            dead += z * s.p_dead;
            // Relative standard error of the stratum mean, compounded in
            // log space along the product Z_{d+1} = Z_d · m_d.
            if s.mean > 0.0 && s.n > 0 {
                let rel_se = s.sd / (s.n as f64).sqrt() / s.mean;
                log_var += rel_se * rel_se;
            }
            z *= s.mean;
            depth_profile.push(z);
        }
        let stand_trees = depth_profile[self.depth - 1];
        let intermediate_states: f64 = depth_profile[..self.depth - 1].iter().sum();
        // Two-sigma log-space band with an inflation floor: capped
        // profiles observe a DFS prefix, not an unbiased sample, so the
        // analytic term alone under-covers.
        let band = (2.0 * log_var.sqrt()).exp().clamp(1.6, 12.0);
        CountPrediction {
            stand_trees,
            intermediate_states,
            dead_ends: dead,
            depth_profile,
            band,
        }
    }

    /// Predicted speedup at `threads` workers: builds a deterministic
    /// synthetic tree from the fitted offspring histograms and replays
    /// the engine's split policy on it in lock-step. Chain-shaped strata
    /// produce the Fig. 5a plateau; bushy strata scale nearly linearly.
    pub fn predict_speedup(&self, threads: usize) -> f64 {
        let tree = self.synthetic_tree();
        if tree.is_empty() || threads <= 1 {
            return 1.0;
        }
        let t1 = tree.len() as u64;
        let tn = schedule_makespan(&tree, self.depth, threads.max(1));
        t1 as f64 / tn.max(1) as f64
    }

    /// Deterministic synthetic tree: per stratum, offspring counts are
    /// allocated to nodes by largest-remainder apportionment of the
    /// fitted histogram, then dealt round-robin so sibling shapes mix.
    /// Returns nodes as `(position, children_count)` in creation (BFS)
    /// order with child ranges implicit; capped at [`SYNTH_NODE_CAP`].
    fn synthetic_tree(&self) -> Vec<SynthNode> {
        let mut nodes: Vec<SynthNode> = Vec::new();
        if self.depth == 0 {
            return nodes;
        }
        // Position-1 nodes: the root's branches.
        let mut frontier = (self.root_offspring as usize).min(SYNTH_NODE_CAP);
        for _ in 0..frontier {
            nodes.push(SynthNode {
                position: 1,
                children: 0,
            });
        }
        let mut level_start = 0usize;
        for s in &self.strata {
            if frontier == 0 || nodes.len() >= SYNTH_NODE_CAP {
                break;
            }
            let counts = apportion(&s.hist, frontier);
            let mut next = 0usize;
            for (i, &c) in counts.iter().enumerate() {
                let budget_left = SYNTH_NODE_CAP.saturating_sub(nodes.len() + next);
                let c = c.min(budget_left);
                nodes[level_start + i].children = c as u32;
                next += c;
            }
            for _ in 0..next {
                nodes.push(SynthNode {
                    position: s.position + 1,
                    children: 0,
                });
            }
            level_start += frontier;
            frontier = next;
        }
        nodes
    }
}

/// A synthetic-tree node: its insertion position and child count. The
/// children of level-order node `i` occupy the next free slots of the
/// following level, in order — enough structure for the scheduler, which
/// only walks levels.
#[derive(Clone, Copy, Debug)]
struct SynthNode {
    position: usize,
    children: u32,
}

/// Largest-remainder apportionment of `hist` (fractions) over `n` nodes,
/// dealt round-robin across the node list so consecutive nodes differ.
fn apportion(hist: &[(u32, f64)], n: usize) -> Vec<usize> {
    let mut quota: Vec<(u32, f64)> = hist.iter().map(|&(k, p)| (k, p * n as f64)).collect();
    let mut alloc: Vec<(u32, usize)> = quota.iter().map(|&(k, q)| (k, q as usize)).collect();
    let assigned: usize = alloc.iter().map(|&(_, c)| c).sum();
    // Distribute the remainder to the largest fractional parts
    // (ties broken by child count, descending — favor branching).
    quota.iter_mut().for_each(|e| e.1 -= e.1.floor());
    let mut order: Vec<usize> = (0..quota.len()).collect();
    order.sort_by(|&a, &b| {
        quota[b]
            .1
            .partial_cmp(&quota[a].1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(quota[b].0.cmp(&quota[a].0))
    });
    for &i in order.iter().take(n.saturating_sub(assigned)) {
        alloc[i].1 += 1;
    }
    // Deal the multiset round-robin: node j takes one value from bucket
    // j mod buckets until buckets drain.
    let mut out = Vec::with_capacity(n);
    let mut buckets: Vec<(u32, usize)> = alloc.into_iter().filter(|&(_, c)| c > 0).collect();
    let mut bi = 0usize;
    while out.len() < n && !buckets.is_empty() {
        bi %= buckets.len();
        let (k, ref mut c) = buckets[bi];
        out.push(k as usize);
        *c -= 1;
        if buckets[bi].1 == 0 {
            buckets.remove(bi);
        } else {
            bi += 1;
        }
    }
    while out.len() < n {
        out.push(0);
    }
    out
}

/// Lock-step list scheduler honoring the engine's split policy: every
/// node costs one tick; a worker explores its subtree DFS (LIFO own
/// stack); siblings become stealable only when the frame had ≥ 2 pending
/// children and at least [`MIN_REMAINING_FOR_SPLIT`] insertion positions
/// remained below; idle workers steal the shallowest stealable entry
/// from the fullest victim. Deterministic.
fn schedule_makespan(tree: &[SynthNode], depth: usize, threads: usize) -> u64 {
    // Rebuild child ranges level by level (children occupy the next
    // level's slots in order).
    let n = tree.len();
    let mut first_child = vec![usize::MAX; n];
    let mut level_start = 0usize;
    let mut level_len = tree.iter().take_while(|s| s.position == 1).count();
    let mut next_level_start = level_len;
    while level_len > 0 && next_level_start < n {
        let mut cursor = next_level_start;
        for i in level_start..level_start + level_len {
            if tree[i].children > 0 {
                first_child[i] = cursor;
                cursor += tree[i].children as usize;
            }
        }
        level_start = next_level_start;
        level_len = cursor - next_level_start;
        next_level_start = cursor;
    }

    #[derive(Clone)]
    struct Entry {
        node: usize,
        stealable: bool,
    }
    let root_count = tree.iter().take_while(|s| s.position == 1).count();
    let mut stacks: Vec<Vec<Entry>> = vec![Vec::new(); threads];
    // The root frame: all position-1 branches, stealable when the split
    // rule allows at the root.
    let root_stealable = root_count >= 2 && depth >= MIN_REMAINING_FOR_SPLIT;
    for i in (0..root_count).rev() {
        stacks[0].push(Entry {
            node: i,
            stealable: root_stealable,
        });
    }
    let mut ticks = 0u64;
    loop {
        if stacks.iter().all(|s| s.is_empty()) {
            break;
        }
        ticks += 1;
        // Execution phase: every non-idle worker pays one tick for its
        // top entry and expands it.
        let mut pushes: Vec<(usize, Vec<Entry>)> = Vec::new();
        for (w, stack) in stacks.iter_mut().enumerate() {
            let Some(e) = stack.pop() else { continue };
            let node = &tree[e.node];
            let c = node.children as usize;
            if c > 0 && first_child[e.node] != usize::MAX {
                let remaining = depth.saturating_sub(node.position);
                let stealable = c >= 2 && remaining >= MIN_REMAINING_FOR_SPLIT;
                let entries: Vec<Entry> = (0..c)
                    .rev()
                    .map(|j| Entry {
                        node: first_child[e.node] + j,
                        stealable,
                    })
                    .collect();
                pushes.push((w, entries));
            }
        }
        for (w, entries) in pushes {
            stacks[w].extend(entries);
        }
        // Steal phase: each idle worker takes the shallowest stealable
        // entry from the victim with the most stealable work.
        for w in 0..threads {
            if !stacks[w].is_empty() {
                continue;
            }
            let victim = (0..threads)
                .filter(|&v| v != w)
                .max_by_key(|&v| stacks[v].iter().filter(|e| e.stealable).count());
            if let Some(v) = victim {
                if let Some(pos) = stacks[v].iter().position(|e| e.stealable) {
                    let e = stacks[v].remove(pos);
                    stacks[w].push(e);
                }
            }
        }
    }
    ticks
}

#[cfg(test)]
mod tests {
    use super::*;
    use gentrius_core::run_serial;
    use phylo::newick::parse_forest;

    fn toy_problem() -> StandProblem {
        let (_, trees) = parse_forest(["((A,B),(C,D));", "((A,E),(F,G));"]).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    #[test]
    fn profile_matches_serial_counters_when_unbounded() {
        let p = toy_problem();
        let cfg = GentriusConfig::exhaustive();
        let profile = profile_search(&p, &cfg, u64::MAX).unwrap();
        assert!(!profile.truncated);
        let serial = run_serial(&p, &cfg, &mut CountOnly).unwrap();
        let trees: u64 = profile.strata.last().map(|s| s.nodes).unwrap_or(0);
        let states: u64 = profile.strata[..profile.depth - 1]
            .iter()
            .map(|s| s.nodes)
            .sum();
        let dead: u64 = profile.strata.iter().map(|s| s.dead_ends).sum();
        assert_eq!(trees, serial.stats.stand_trees);
        assert_eq!(states, serial.stats.intermediate_states);
        assert_eq!(dead, serial.stats.dead_ends);
    }

    #[test]
    fn unbounded_fit_predicts_exact_totals() {
        let p = toy_problem();
        let cfg = GentriusConfig::exhaustive();
        let profile = profile_search(&p, &cfg, u64::MAX).unwrap();
        let model = GwModel::fit(&profile);
        let pred = model.predict_counts();
        let serial = run_serial(&p, &cfg, &mut CountOnly).unwrap();
        // An unbounded profile observes the whole tree: the per-stratum
        // means are exact, so the depth-profile products reproduce the
        // true totals exactly (floating-point roundoff aside).
        assert!((pred.stand_trees - serial.stats.stand_trees as f64).abs() < 1e-6);
        assert!((pred.intermediate_states - serial.stats.intermediate_states as f64).abs() < 1e-6);
        assert!((pred.dead_ends - serial.stats.dead_ends as f64).abs() < 1e-6);
    }

    #[test]
    fn fit_and_predictions_are_deterministic() {
        let p = toy_problem();
        let cfg = GentriusConfig::exhaustive();
        let pr1 = profile_search(&p, &cfg, 1_000).unwrap();
        let pr2 = profile_search(&p, &cfg, 1_000).unwrap();
        assert_eq!(pr1, pr2);
        let m1 = GwModel::fit(&pr1);
        let m2 = GwModel::fit(&pr2);
        assert_eq!(m1, m2);
        assert_eq!(m1.predict_counts(), m2.predict_counts());
        assert_eq!(
            m1.predict_speedup(4).to_bits(),
            m2.predict_speedup(4).to_bits()
        );
    }

    #[test]
    fn chain_tree_does_not_scale() {
        // A pure chain: one child per stratum — no stealable work at all.
        let model = GwModel {
            depth: 20,
            root_offspring: 1,
            strata: (1..20)
                .map(|d| GwStratum {
                    position: d,
                    n: 1,
                    mean: 1.0,
                    sd: 0.0,
                    p_dead: 0.0,
                    hist: vec![(1, 1.0)],
                })
                .collect(),
        };
        let sp = model.predict_speedup(8);
        assert!((sp - 1.0).abs() < 1e-9, "chain speedup {sp}");
    }

    #[test]
    fn bushy_tree_scales_and_saturated_chain_plateaus() {
        // Binary-branching tree: close-to-linear scaling.
        let bushy = GwModel {
            depth: 12,
            root_offspring: 2,
            strata: (1..12)
                .map(|d| GwStratum {
                    position: d,
                    n: 100,
                    mean: 2.0,
                    sd: 0.0,
                    p_dead: 0.0,
                    hist: vec![(2, 1.0)],
                })
                .collect(),
        };
        let sp4 = bushy.predict_speedup(4);
        assert!(sp4 > 3.0, "bushy sp4={sp4}");
        // Plateau shape: a 4-way split at the top, pure chains below —
        // speedup saturates near 4 no matter the thread count.
        let plateau = GwModel {
            depth: 30,
            root_offspring: 4,
            strata: (1..30)
                .map(|d| GwStratum {
                    position: d,
                    n: 4,
                    mean: 1.0,
                    sd: 0.0,
                    p_dead: 0.0,
                    hist: vec![(1, 1.0)],
                })
                .collect(),
        };
        let sp8 = plateau.predict_speedup(8);
        let sp16 = plateau.predict_speedup(16);
        assert!(sp8 > 2.5, "plateau sp8={sp8}");
        assert!(sp8 < 5.0, "plateau sp8={sp8}");
        assert!((sp16 - sp8).abs() < 0.5, "no plateau: {sp8} vs {sp16}");
    }
}
