//! Partitioned multiple sequence alignments (supermatrices).
//!
//! The supermatrix approach of the paper's §I: per-gene alignments are
//! concatenated into one matrix divided into disjoint partitions, and a
//! missing species×locus cell means the species' whole row within that
//! partition is gaps. DNA states are stored as 4-bit sets (the natural
//! representation for Fitch parsimony): `A=1, C=2, G=4, T=8`, and a gap /
//! missing character is the full set `15`.

use phylo::bitset::BitSet;
use phylo::pam::Pam;
use phylo::taxa::{TaxonId, TaxonSet};
use std::fmt::Write as _;

/// Bit encoding of `A`.
pub const A: u8 = 1;
/// Bit encoding of `C`.
pub const C: u8 = 2;
/// Bit encoding of `G`.
pub const G: u8 = 4;
/// Bit encoding of `T`.
pub const T: u8 = 8;
/// Gap / missing data: the full state set.
pub const MISSING: u8 = 15;

/// Converts a character to its state-set encoding.
pub fn encode(c: char) -> Option<u8> {
    match c.to_ascii_uppercase() {
        'A' => Some(A),
        'C' => Some(C),
        'G' => Some(G),
        'T' | 'U' => Some(T),
        '-' | '?' | 'N' | 'X' => Some(MISSING),
        'R' => Some(A | G),
        'Y' => Some(C | T),
        _ => None,
    }
}

/// Converts a state set back to a character (ambiguity → IUPAC-ish).
pub fn decode(s: u8) -> char {
    match s {
        x if x == A => 'A',
        x if x == C => 'C',
        x if x == G => 'G',
        x if x == T => 'T',
        x if x == MISSING => '-',
        x if x == (A | G) => 'R',
        x if x == (C | T) => 'Y',
        _ => '?',
    }
}

/// One partition (gene/locus): a name and a half-open site range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Partition label (e.g. the gene name).
    pub name: String,
    /// First site (0-based).
    pub start: usize,
    /// One past the last site.
    pub end: usize,
}

impl Partition {
    /// Number of sites.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for an empty range.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// A partitioned supermatrix over a taxon universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Supermatrix {
    universe: usize,
    /// `rows[taxon][site]` as state sets; every row has `sites` entries.
    rows: Vec<Vec<u8>>,
    sites: usize,
    partitions: Vec<Partition>,
}

impl Supermatrix {
    /// An all-missing matrix with the given shape.
    pub fn new(universe: usize, sites: usize, partitions: Vec<Partition>) -> Self {
        debug_assert!(partitions.iter().all(|p| p.end <= sites && !p.is_empty()));
        Supermatrix {
            universe,
            rows: vec![vec![MISSING; sites]; universe],
            sites,
            partitions,
        }
    }

    /// The taxon universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Total number of sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// State set at `(taxon, site)`.
    pub fn get(&self, t: TaxonId, site: usize) -> u8 {
        self.rows[t.index()][site]
    }

    /// Sets the state at `(taxon, site)`.
    pub fn set(&mut self, t: TaxonId, site: usize, state: u8) {
        debug_assert!(state > 0 && state <= 15);
        self.rows[t.index()][site] = state;
    }

    /// The taxa with at least one non-missing site inside partition `p` —
    /// the PAM column this matrix implies for that partition.
    pub fn partition_taxa(&self, p: usize) -> BitSet {
        let part = &self.partitions[p];
        let mut s = BitSet::new(self.universe);
        for (t, row) in self.rows.iter().enumerate() {
            if row[part.start..part.end].iter().any(|&x| x != MISSING) {
                s.insert(t);
            }
        }
        s
    }

    /// The presence–absence matrix implied by the partitions.
    pub fn implied_pam(&self) -> Pam {
        let cols = (0..self.partitions.len())
            .map(|p| self.partition_taxa(p))
            .collect();
        Pam::from_columns(self.universe, cols)
    }

    /// Blanks every cell that the PAM marks absent (whole partition rows).
    pub fn apply_pam(&mut self, pam: &Pam) {
        assert_eq!(pam.loci(), self.partitions.len());
        for (p, part) in self.partitions.clone().iter().enumerate() {
            for t in 0..self.universe {
                if !pam.get(TaxonId(t as u32), p) {
                    for site in part.start..part.end {
                        self.rows[t][site] = MISSING;
                    }
                }
            }
        }
    }

    /// Renders a relaxed-PHYLIP supermatrix plus a RAxML-style partition
    /// file (`DNA, name = start-end` with 1-based inclusive coordinates).
    pub fn to_phylip(&self, taxa: &TaxonSet) -> (String, String) {
        let mut matrix = String::new();
        writeln!(matrix, "{} {}", self.universe, self.sites).unwrap();
        for (id, name) in taxa.iter() {
            let seq: String = self.rows[id.index()].iter().map(|&s| decode(s)).collect();
            writeln!(matrix, "{name} {seq}").unwrap();
        }
        let mut parts = String::new();
        for p in &self.partitions {
            writeln!(parts, "DNA, {} = {}-{}", p.name, p.start + 1, p.end).unwrap();
        }
        (matrix, parts)
    }

    /// Parses the pair of files produced by [`Supermatrix::to_phylip`],
    /// interning taxa.
    pub fn parse_phylip(
        matrix: &str,
        partitions: &str,
        taxa: &mut TaxonSet,
    ) -> Result<Supermatrix, String> {
        let mut lines = matrix.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty matrix file")?;
        let mut it = header.split_whitespace();
        let n: usize = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or("bad taxon count")?;
        let sites: usize = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or("bad site count")?;

        let mut parts = Vec::new();
        for line in partitions.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .split_once(',')
                .map(|(_, r)| r)
                .ok_or_else(|| format!("bad partition line: {line}"))?;
            let (name, range) = rest
                .split_once('=')
                .ok_or_else(|| format!("bad partition line: {line}"))?;
            let (a, b) = range
                .trim()
                .split_once('-')
                .ok_or_else(|| format!("bad partition range: {line}"))?;
            let start: usize = a.trim().parse().map_err(|_| "bad range start")?;
            let end: usize = b.trim().parse().map_err(|_| "bad range end")?;
            if start < 1 || end > sites || start > end {
                return Err(format!("partition out of bounds: {line}"));
            }
            parts.push(Partition {
                name: name.trim().to_string(),
                start: start - 1,
                end,
            });
        }
        if parts.is_empty() {
            return Err("no partitions".into());
        }

        let mut rows: Vec<(TaxonId, Vec<u8>)> = Vec::new();
        for line in lines.take(n) {
            let (name, seq) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("bad matrix row: {line}"))?;
            let states: Vec<u8> = seq
                .trim()
                .chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| encode(c).ok_or_else(|| format!("bad character '{c}'")))
                .collect::<Result<_, _>>()?;
            if states.len() != sites {
                return Err(format!(
                    "row {name} has {} sites, expected {sites}",
                    states.len()
                ));
            }
            rows.push((taxa.intern(name), states));
        }
        if rows.len() != n {
            return Err(format!("expected {n} rows, found {}", rows.len()));
        }
        let mut sm = Supermatrix::new(taxa.len(), sites, parts);
        for (t, states) in rows {
            sm.rows[t.index()] = states;
        }
        Ok(sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (TaxonSet, Supermatrix) {
        let taxa = TaxonSet::with_synthetic(3);
        let parts = vec![
            Partition {
                name: "g1".into(),
                start: 0,
                end: 3,
            },
            Partition {
                name: "g2".into(),
                start: 3,
                end: 5,
            },
        ];
        let mut sm = Supermatrix::new(3, 5, parts);
        for (t, seq) in [(0u32, "ACGTA"), (1, "ACGTC"), (2, "AC---")] {
            for (i, ch) in seq.chars().enumerate() {
                sm.set(TaxonId(t), i, encode(ch).unwrap());
            }
        }
        (taxa, sm)
    }

    #[test]
    fn encode_decode_roundtrip() {
        for c in ['A', 'C', 'G', 'T', '-'] {
            assert_eq!(decode(encode(c).unwrap()), c);
        }
        assert_eq!(encode('u'), Some(T));
        assert_eq!(encode('N'), Some(MISSING));
        assert_eq!(encode('Z'), None);
    }

    #[test]
    fn partition_taxa_and_implied_pam() {
        let (_, sm) = toy();
        assert_eq!(sm.partition_taxa(0).count(), 3);
        assert_eq!(sm.partition_taxa(1).count(), 2); // taxon 2 is all gaps in g2
        let pam = sm.implied_pam();
        assert!(pam.get(TaxonId(2), 0));
        assert!(!pam.get(TaxonId(2), 1));
    }

    #[test]
    fn apply_pam_blanks_rows() {
        let (_, mut sm) = toy();
        let mut pam = sm.implied_pam();
        pam.set(TaxonId(0), 0, false);
        sm.apply_pam(&pam);
        assert_eq!(sm.get(TaxonId(0), 0), MISSING);
        assert_eq!(sm.get(TaxonId(0), 2), MISSING);
        assert_ne!(sm.get(TaxonId(0), 3), MISSING); // g2 untouched
    }

    #[test]
    fn phylip_roundtrip() {
        let (taxa, sm) = toy();
        let (matrix, parts) = sm.to_phylip(&taxa);
        let mut taxa2 = TaxonSet::new();
        let sm2 = Supermatrix::parse_phylip(&matrix, &parts, &mut taxa2).unwrap();
        assert_eq!(sm, sm2);
        assert_eq!(taxa2.len(), 3);
    }

    #[test]
    fn parse_rejects_malformed() {
        let mut taxa = TaxonSet::new();
        assert!(Supermatrix::parse_phylip("", "DNA, a = 1-2", &mut taxa).is_err());
        assert!(Supermatrix::parse_phylip("1 3\nA ACG\n", "", &mut taxa).is_err());
        assert!(Supermatrix::parse_phylip("1 3\nA ACG\n", "DNA, a = 1-9", &mut taxa).is_err());
        assert!(Supermatrix::parse_phylip("1 3\nA ACZ\n", "DNA, a = 1-3", &mut taxa).is_err());
    }
}
