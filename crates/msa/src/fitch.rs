//! Fitch parsimony on unrooted trees, with both missing-data policies.
//!
//! Sanderson et al.'s terrace result (the paper's refs 6 and 7): when the
//! per-partition score is computed on the tree *restricted to the taxa
//! with data in that partition*, every tree on a stand scores identically
//! — because the restrictions are identical trees. For parsimony the
//! naive policy ([`MissingMode::Wildcard`], missing cells as wildcards on
//! the full tree) is provably *score-equivalent*: a wildcard state set is
//! absorbing in the Fitch fold (`a ∩ full = a`), so wildcard subtrees are
//! transparent. Both policies are implemented and their equivalence is a
//! property test — which is exactly why parsimony terraces are unavoidable
//! rather than an artifact of one scoring convention.

use crate::alignment::{Supermatrix, MISSING};
use phylo::ops::restrict;
use phylo::taxa::TaxonId;
use phylo::tree::Tree;

/// How a taxon without data in a partition is handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissingMode {
    /// Score each partition on `T|Y_p` (the terrace-inducing convention
    /// used by supermatrix tools; refs 6 and 7 of the paper).
    Restrict,
    /// Keep the full tree and let missing cells be wildcards. For Fitch
    /// parsimony this is score-equivalent to [`MissingMode::Restrict`]
    /// (wildcards absorb in the fold), at a higher per-site cost on trees
    /// with many data-less taxa.
    Wildcard,
}

/// Fitch parsimony score of a single site pattern on `tree`. `states[t]`
/// is the 4-bit state set of taxon `t` (use [`MISSING`] for absent taxa —
/// wildcards never force a mutation).
pub fn fitch_site(tree: &Tree, states: &[u8]) -> u64 {
    if tree.leaf_count() < 2 {
        return 0;
    }
    let root = tree.any_leaf().expect("non-empty tree");
    let order = tree.preorder(root);
    let mut set = vec![0u8; tree.node_id_bound()];
    let mut cost = 0u64;
    for &(v, pe) in order.iter().rev() {
        if let Some(t) = tree.taxon(v) {
            set[v.index()] = states[t.index()];
        } else {
            // Fold the children's sets (all neighbours except the parent).
            let mut acc: Option<u8> = None;
            for &e in tree.adjacent_edges(v) {
                if Some(e) == pe {
                    continue;
                }
                let c = set[tree.opposite(e, v).index()];
                acc = Some(match acc {
                    None => c,
                    Some(a) => {
                        if a & c != 0 {
                            a & c
                        } else {
                            cost += 1;
                            a | c
                        }
                    }
                });
            }
            set[v.index()] = acc.expect("internal node has children");
        }
        let _ = pe;
    }
    // Close the cycle at the root leaf: one more intersection step with
    // its single subtree.
    let root_edge = tree.adjacent_edges(root)[0];
    let below = set[tree.opposite(root_edge, root).index()];
    if below & set[root.index()] == 0 {
        cost += 1;
    }
    cost
}

/// Per-partition and total parsimony scores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsimonyScore {
    /// Score per partition, in partition order.
    pub per_partition: Vec<u64>,
}

impl ParsimonyScore {
    /// Sum over partitions.
    pub fn total(&self) -> u64 {
        self.per_partition.iter().sum()
    }
}

/// Scores `tree` against the supermatrix under the given missing-data
/// policy. The tree must contain every taxon that has data (extra taxa in
/// the tree without data are fine — they are wildcards or restricted away).
pub fn score(tree: &Tree, matrix: &Supermatrix, mode: MissingMode) -> ParsimonyScore {
    let mut per_partition = Vec::with_capacity(matrix.partitions().len());
    for (p, part) in matrix.partitions().iter().enumerate() {
        let taxa_p = matrix.partition_taxa(p);
        let scored_tree: Tree;
        let t = match mode {
            MissingMode::Restrict => {
                scored_tree = restrict(tree, &taxa_p);
                &scored_tree
            }
            MissingMode::Wildcard => tree,
        };
        let mut total = 0u64;
        let mut states = vec![MISSING; matrix.universe()];
        for site in part.start..part.end {
            for tx in t.taxa().iter() {
                states[tx] = matrix.get(TaxonId(tx as u32), site);
            }
            total += fitch_site(t, &states);
        }
        per_partition.push(total);
    }
    ParsimonyScore { per_partition }
}

/// Convenience for tests: scores a site given explicit `(taxon, state)`
/// pairs (everything else missing).
pub fn fitch_site_sparse(tree: &Tree, pairs: &[(TaxonId, u8)]) -> u64 {
    let mut states = vec![MISSING; tree.universe()];
    for &(t, s) in pairs {
        states[t.index()] = s;
    }
    fitch_site(tree, &states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{encode, Partition, A, C, G, T};
    use phylo::newick::parse_forest;

    fn quartet(newick: &str) -> (phylo::TaxonSet, Tree) {
        let (taxa, trees) = parse_forest([newick]).unwrap();
        (taxa, trees.into_iter().next().unwrap())
    }

    /// `(taxon-name, state)` pairs resolved against the parsed taxon set.
    fn sparse(taxa: &phylo::TaxonSet, tree: &Tree, pairs: &[(&str, u8)]) -> u64 {
        let resolved: Vec<(TaxonId, u8)> = pairs
            .iter()
            .map(|&(n, s)| (taxa.get(n).expect("known taxon"), s))
            .collect();
        fitch_site_sparse(tree, &resolved)
    }

    #[test]
    fn constant_site_costs_zero() {
        let (taxa, t) = quartet("((A,B),(C,D));");
        assert_eq!(
            sparse(&taxa, &t, &[("A", A), ("B", A), ("C", A), ("D", A)]),
            0
        );
    }

    #[test]
    fn concordant_and_discordant_quartet_sites() {
        // Pattern {A,B}=x, {C,D}=y matches the ((A,B),(C,D)) grouping → 1.
        let (taxa, t) = quartet("((A,B),(C,D));");
        assert_eq!(
            sparse(&taxa, &t, &[("A", A), ("B", A), ("C", C), ("D", C)]),
            1
        );
        // Pattern {A,C} vs {B,D} conflicts with that tree → 2 changes.
        assert_eq!(
            sparse(&taxa, &t, &[("A", A), ("B", C), ("C", A), ("D", C)]),
            2
        );
        // …but costs 1 on ((A,C),(B,D)), which groups the pattern.
        let (taxa2, t2) = quartet("((A,C),(B,D));");
        assert_eq!(
            sparse(&taxa2, &t2, &[("A", A), ("B", C), ("C", A), ("D", C)]),
            1
        );
    }

    #[test]
    fn all_different_states() {
        let (taxa, t) = quartet("((A,B),(C,D));");
        assert_eq!(
            sparse(&taxa, &t, &[("A", A), ("B", C), ("C", G), ("D", T)]),
            3
        );
    }

    #[test]
    fn wildcards_never_add_cost() {
        let (taxa, t) = quartet("((A,B),(C,D));");
        assert_eq!(sparse(&taxa, &t, &[("A", A), ("B", C)]), 1);
        assert_eq!(fitch_site_sparse(&t, &[]), 0);
    }

    #[test]
    fn score_modes_agree_without_missing_data() {
        let (_, t) = quartet("((A,B),(C,D));");
        let parts = vec![Partition {
            name: "g".into(),
            start: 0,
            end: 4,
        }];
        let mut m = Supermatrix::new(4, 4, parts);
        for (tx, seq) in [(0u32, "AACA"), (1, "AACC"), (2, "CAGA"), (3, "CAGC")] {
            for (i, ch) in seq.chars().enumerate() {
                m.set(TaxonId(tx), i, encode(ch).unwrap());
            }
        }
        let r = score(&t, &m, MissingMode::Restrict);
        let w = score(&t, &m, MissingMode::Wildcard);
        assert_eq!(r, w);
        assert_eq!(r.total(), r.per_partition.iter().sum::<u64>());
    }
}
