//! Jukes–Cantor log-likelihood via Felsenstein pruning.
//!
//! The paper's primary scoring criterion is maximum likelihood: terraces
//! exist because the per-partition likelihood of a supermatrix depends
//! only on the tree *restricted to the partition's taxa* (plus per-
//! partition parameters). This module scores trees under JC69 with a
//! fixed per-edge branch length — enough to demonstrate the terrace for
//! likelihood (any scorer that is a function of `T|Y_p` is constant on a
//! stand), without the branch-length optimization machinery of a full ML
//! package.

use crate::alignment::{Supermatrix, MISSING};
use crate::fitch::MissingMode;
use phylo::ops::restrict;
use phylo::taxa::TaxonId;
use phylo::tree::Tree;

/// JC69 transition probability of observing the *same* base across a
/// branch of length `t` (expected substitutions per site).
fn p_same(t: f64) -> f64 {
    0.25 + 0.75 * (-4.0 * t / 3.0).exp()
}

/// ...and of observing a *specific different* base.
fn p_diff(t: f64) -> f64 {
    0.25 - 0.25 * (-4.0 * t / 3.0).exp()
}

/// Per-site conditional likelihoods for the four bases.
type Partials = [f64; 4];

fn leaf_partials(state: u8) -> Partials {
    let mut p = [0.0; 4];
    for (b, slot) in p.iter_mut().enumerate() {
        if state >> b & 1 == 1 {
            *slot = 1.0;
        }
    }
    p
}

fn propagate(child: &Partials, t: f64) -> Partials {
    let same = p_same(t);
    let diff = p_diff(t);
    let total: f64 = child.iter().sum();
    let mut out = [0.0; 4];
    for b in 0..4 {
        // sum_c P(c|b) L(c) = same*L(b) + diff*(total - L(b))
        out[b] = same * child[b] + diff * (total - child[b]);
    }
    out
}

/// Log-likelihood of one site pattern on `tree` under JC69 with every
/// branch of length `branch_len`. `states[t]` uses the 4-bit encoding;
/// [`MISSING`] taxa contribute all-ones partials (standard wildcard).
pub fn site_log_likelihood(tree: &Tree, states: &[u8], branch_len: f64) -> f64 {
    let n = tree.leaf_count();
    if n == 0 {
        return 0.0;
    }
    if n == 1 {
        return (0.25f64).ln();
    }
    let root = tree.any_leaf().expect("non-empty tree");
    let order = tree.preorder(root);
    let mut partials: Vec<Partials> = vec![[0.0; 4]; tree.node_id_bound()];
    for &(v, pe) in order.iter().rev() {
        if let Some(t) = tree.taxon(v) {
            partials[v.index()] = leaf_partials(states[t.index()]);
            continue;
        }
        let mut acc = [1.0f64; 4];
        for &e in tree.adjacent_edges(v) {
            if Some(e) == pe {
                continue;
            }
            let child = propagate(&partials[tree.opposite(e, v).index()], branch_len);
            for b in 0..4 {
                acc[b] *= child[b];
            }
        }
        partials[v.index()] = acc;
    }
    // Close at the root leaf across its pendant edge.
    let pendant = tree.adjacent_edges(root)[0];
    let below = propagate(&partials[tree.opposite(pendant, root).index()], branch_len);
    let rootp = leaf_partials(
        tree.taxon(root)
            .map(|t| states[t.index()])
            .unwrap_or(MISSING),
    );
    let mut lik = 0.0;
    for b in 0..4 {
        lik += 0.25 * rootp[b] * below[b];
    }
    lik.max(f64::MIN_POSITIVE).ln()
}

/// Per-partition log-likelihoods of `tree` against the supermatrix.
/// [`MissingMode::Restrict`] scores each partition on `T|Y_p` — the
/// supermatrix convention under which stands are terraces.
pub fn log_likelihood(
    tree: &Tree,
    matrix: &Supermatrix,
    branch_len: f64,
    mode: MissingMode,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(matrix.partitions().len());
    for (p, part) in matrix.partitions().iter().enumerate() {
        let taxa_p = matrix.partition_taxa(p);
        let scored: Tree;
        let t = match mode {
            MissingMode::Restrict => {
                scored = restrict(tree, &taxa_p);
                &scored
            }
            MissingMode::Wildcard => tree,
        };
        let mut states = vec![MISSING; matrix.universe()];
        let mut total = 0.0;
        for site in part.start..part.end {
            for tx in t.taxa().iter() {
                states[tx] = matrix.get(TaxonId(tx as u32), site);
            }
            total += site_log_likelihood(t, &states, branch_len);
        }
        out.push(total);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{encode, Partition, A, C};
    use phylo::newick::parse_forest;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn jc_probabilities_are_a_distribution() {
        for t in [0.0, 0.05, 0.3, 2.0] {
            let total = p_same(t) + 3.0 * p_diff(t);
            assert!(close(total, 1.0), "t={t}: {total}");
        }
        assert!(close(p_same(0.0), 1.0));
        // Long branches forget the state.
        assert!((p_same(50.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn two_leaf_likelihood_matches_closed_form() {
        let (taxa, trees) = parse_forest(["(X,Y);"]).unwrap();
        let t = &trees[0];
        let x = taxa.get("X").unwrap();
        let y = taxa.get("Y").unwrap();
        let bl = 0.1;
        // Two leaves joined by one edge: L = 0.25 * P(state_y | state_x).
        let mut states = vec![MISSING; 2];
        states[x.index()] = A;
        states[y.index()] = A;
        let ll_same = site_log_likelihood(t, &states, bl);
        assert!(close(ll_same, (0.25 * p_same(bl)).ln()), "{ll_same}");
        states[y.index()] = C;
        let ll_diff = site_log_likelihood(t, &states, bl);
        assert!(close(ll_diff, (0.25 * p_diff(bl)).ln()), "{ll_diff}");
        assert!(ll_same > ll_diff);
    }

    #[test]
    fn missing_leaves_are_neutral() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));"]).unwrap();
        let t = &trees[0];
        let mut states = vec![MISSING; 4];
        states[taxa.get("A").unwrap().index()] = A;
        // All others missing: the site likelihood must be exactly 0.25
        // (one observed base, uniform stationary distribution).
        let ll = site_log_likelihood(t, &states, 0.2);
        assert!(close(ll, (0.25f64).ln()), "{ll}");
    }

    #[test]
    fn concordant_site_likes_the_true_grouping() {
        // One forest → one shared taxon universe for both topologies.
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((A,C),(B,D));"]).unwrap();
        let mut states = vec![MISSING; 4];
        states[taxa.get("A").unwrap().index()] = A;
        states[taxa.get("B").unwrap().index()] = A;
        states[taxa.get("C").unwrap().index()] = C;
        states[taxa.get("D").unwrap().index()] = C;
        let good = site_log_likelihood(&trees[0], &states, 0.1);
        let bad = site_log_likelihood(&trees[1], &states, 0.1);
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn partitioned_likelihood_shape() {
        let parts = vec![
            Partition {
                name: "g1".into(),
                start: 0,
                end: 2,
            },
            Partition {
                name: "g2".into(),
                start: 2,
                end: 4,
            },
        ];
        let mut m = Supermatrix::new(4, 4, parts);
        for (tx, seq) in [(0u32, "AACC"), (1, "AACC"), (2, "CCAA"), (3, "CCAA")] {
            for (i, ch) in seq.chars().enumerate() {
                m.set(TaxonId(tx), i, encode(ch).unwrap());
            }
        }
        let (_, trees) = parse_forest(["((A,B),(C,D));"]).unwrap();
        let ll = log_likelihood(&trees[0], &m, 0.1, MissingMode::Restrict);
        assert_eq!(ll.len(), 2);
        assert!(ll.iter().all(|x| x.is_finite() && *x < 0.0));
    }
}
