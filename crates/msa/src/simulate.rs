//! Sequence simulation along a tree (Jukes–Cantor-style), producing the
//! partitioned supermatrices the paper's datasets come from.
//!
//! Each partition evolves independently down the species tree: the root
//! sequence is uniform random, and along every branch each site mutates
//! with a fixed probability to a uniformly chosen different base. Applying
//! a PAM afterwards blanks the missing species×locus blocks — giving a
//! supermatrix whose induced per-partition trees are exactly the Gentrius
//! constraint trees.

use crate::alignment::{Partition, Supermatrix, A, C, G, T};
use phylo::pam::Pam;
use phylo::tree::{NodeId, Tree};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Simulation parameters for one supermatrix.
#[derive(Clone, Debug)]
pub struct SimulateParams {
    /// Sites per partition.
    pub sites_per_partition: usize,
    /// Per-branch, per-site substitution probability.
    pub mutation_prob: f64,
}

impl Default for SimulateParams {
    fn default() -> Self {
        SimulateParams {
            sites_per_partition: 60,
            mutation_prob: 0.12,
        }
    }
}

const BASES: [u8; 4] = [A, C, G, T];

fn random_base<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    BASES[rng.gen_range(0..BASES.len())]
}

fn mutate<R: Rng + ?Sized>(state: u8, rng: &mut R) -> u8 {
    loop {
        let b = random_base(rng);
        if b != state {
            return b;
        }
    }
}

/// Simulates a supermatrix with `loci` partitions on `tree` (which must be
/// a complete binary species tree over its universe), then blanks cells
/// per `pam` if given.
pub fn simulate_supermatrix(
    tree: &Tree,
    loci: usize,
    params: &SimulateParams,
    pam: Option<&Pam>,
    rng: &mut ChaCha8Rng,
) -> Supermatrix {
    let universe = tree.universe();
    let l = params.sites_per_partition;
    let partitions: Vec<Partition> = (0..loci)
        .map(|p| Partition {
            name: format!("gene{p}"),
            start: p * l,
            end: (p + 1) * l,
        })
        .collect();
    let mut matrix = Supermatrix::new(universe, loci * l, partitions);

    let root = tree.any_leaf().expect("non-empty species tree");
    let order = tree.preorder(root);
    for p in 0..loci {
        // Evolve this partition site-block down the tree: seq[node] known
        // once its parent's is (preorder guarantees that).
        let mut seqs: Vec<Option<Vec<u8>>> = vec![None; tree.node_id_bound()];
        for &(v, pe) in &order {
            let seq = match pe {
                None => (0..l).map(|_| random_base(rng)).collect::<Vec<u8>>(),
                Some(pe) => {
                    let parent: NodeId = tree.opposite(pe, v);
                    let parent_seq = seqs[parent.index()]
                        .as_ref()
                        .expect("preorder: parent before child");
                    parent_seq
                        .iter()
                        .map(|&s| {
                            if rng.gen::<f64>() < params.mutation_prob {
                                mutate(s, rng)
                            } else {
                                s
                            }
                        })
                        .collect()
                }
            };
            if let Some(t) = tree.taxon(v) {
                for (i, &s) in seq.iter().enumerate() {
                    matrix.set(t, p * l + i, s);
                }
            }
            seqs[v.index()] = Some(seq);
        }
    }
    if let Some(pam) = pam {
        matrix.apply_pam(pam);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::MISSING;
    use crate::fitch::{score, MissingMode};
    use phylo::generate::{random_tree_on_n, ShapeModel};
    use phylo::taxa::TaxonId;
    use rand::SeedableRng;

    #[test]
    fn simulated_matrix_is_complete_without_pam() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tree = random_tree_on_n(10, ShapeModel::Uniform, &mut rng);
        let m = simulate_supermatrix(&tree, 3, &SimulateParams::default(), None, &mut rng);
        assert_eq!(m.partitions().len(), 3);
        assert_eq!(m.sites(), 180);
        for t in 0..10 {
            for s in 0..m.sites() {
                assert_ne!(m.get(TaxonId(t), s), MISSING);
            }
        }
        assert_eq!(m.implied_pam().missing_fraction(), 0.0);
    }

    #[test]
    fn pam_blanks_the_right_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tree = random_tree_on_n(8, ShapeModel::Uniform, &mut rng);
        let mut pam = Pam::new(8, 2);
        for t in 0..8 {
            pam.set(TaxonId(t), 0, true);
        }
        for t in 0..5 {
            pam.set(TaxonId(t), 1, true);
        }
        let m = simulate_supermatrix(&tree, 2, &SimulateParams::default(), Some(&pam), &mut rng);
        assert_eq!(m.implied_pam(), pam);
    }

    #[test]
    fn true_tree_scores_no_worse_than_random_trees() {
        // Parsimony is consistent-ish on clean simulated data: the
        // generating tree should score <= most random trees.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let tree = random_tree_on_n(12, ShapeModel::Uniform, &mut rng);
        let params = SimulateParams {
            sites_per_partition: 120,
            mutation_prob: 0.08,
        };
        let m = simulate_supermatrix(&tree, 2, &params, None, &mut rng);
        let true_score = score(&tree, &m, MissingMode::Restrict).total();
        let mut better = 0;
        for _ in 0..12 {
            let other = random_tree_on_n(12, ShapeModel::Uniform, &mut rng);
            if score(&other, &m, MissingMode::Restrict).total() < true_score {
                better += 1;
            }
        }
        assert!(
            better <= 2,
            "{better} random trees beat the generating tree"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let t = random_tree_on_n(8, ShapeModel::Uniform, &mut ChaCha8Rng::seed_from_u64(9));
        let a = simulate_supermatrix(
            &t,
            2,
            &SimulateParams::default(),
            None,
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        let b = simulate_supermatrix(
            &t,
            2,
            &SimulateParams::default(),
            None,
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }
}
