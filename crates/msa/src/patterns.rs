//! Site-pattern compression.
//!
//! Alignments contain many repeated columns (constant sites, shared
//! substitution patterns). Every phylogenetic scorer worth shipping
//! deduplicates columns into `(pattern, weight)` pairs once and scores
//! each distinct pattern a single time — typically a several-fold speedup
//! on real data. Compression is per partition (patterns from different
//! partitions must not merge: they are scored on different restricted
//! trees).

use crate::alignment::{Supermatrix, MISSING};
use crate::fitch::{fitch_site, MissingMode};
use crate::likelihood::site_log_likelihood;
use crate::ParsimonyScore;
use phylo::ops::restrict;
use phylo::taxa::TaxonId;
use phylo::tree::Tree;
use std::collections::HashMap;

/// One partition's deduplicated site patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPatterns {
    /// Distinct column patterns (each `universe` bytes long).
    pub patterns: Vec<Vec<u8>>,
    /// `weights[i]` = number of original sites with `patterns[i]`.
    pub weights: Vec<u64>,
}

impl PartitionPatterns {
    /// Number of distinct patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the partition had no sites.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Total original sites represented.
    pub fn total_sites(&self) -> u64 {
        self.weights.iter().sum()
    }
}

/// All partitions' compressed patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedMatrix {
    /// Per-partition patterns, in partition order.
    pub partitions: Vec<PartitionPatterns>,
    universe: usize,
}

/// Compresses the supermatrix column-wise within each partition.
pub fn compress(matrix: &Supermatrix) -> CompressedMatrix {
    let universe = matrix.universe();
    let mut partitions = Vec::with_capacity(matrix.partitions().len());
    for part in matrix.partitions() {
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut patterns = Vec::new();
        let mut weights: Vec<u64> = Vec::new();
        for site in part.start..part.end {
            let col: Vec<u8> = (0..universe)
                .map(|t| matrix.get(TaxonId(t as u32), site))
                .collect();
            match index.get(&col) {
                Some(&i) => weights[i] += 1,
                None => {
                    index.insert(col.clone(), patterns.len());
                    patterns.push(col);
                    weights.push(1);
                }
            }
        }
        partitions.push(PartitionPatterns { patterns, weights });
    }
    CompressedMatrix {
        partitions,
        universe,
    }
}

impl CompressedMatrix {
    /// Parsimony score of `tree` from the compressed patterns — identical
    /// to `fitch::score(tree, matrix, mode)` on the source matrix, faster
    /// when columns repeat.
    pub fn parsimony(
        &self,
        tree: &Tree,
        matrix: &Supermatrix,
        mode: MissingMode,
    ) -> ParsimonyScore {
        let mut per_partition = Vec::with_capacity(self.partitions.len());
        for (p, pats) in self.partitions.iter().enumerate() {
            let taxa_p = matrix.partition_taxa(p);
            let scored: Tree;
            let t = match mode {
                MissingMode::Restrict => {
                    scored = restrict(tree, &taxa_p);
                    &scored
                }
                MissingMode::Wildcard => tree,
            };
            let mut total = 0u64;
            let mut states = vec![MISSING; self.universe];
            for (pattern, &w) in pats.patterns.iter().zip(&pats.weights) {
                for tx in t.taxa().iter() {
                    states[tx] = pattern[tx];
                }
                total += w * fitch_site(t, &states);
            }
            per_partition.push(total);
        }
        ParsimonyScore { per_partition }
    }

    /// JC69 log-likelihood from the compressed patterns — identical to
    /// `likelihood::log_likelihood` on the source matrix.
    pub fn log_likelihood(
        &self,
        tree: &Tree,
        matrix: &Supermatrix,
        branch_len: f64,
        mode: MissingMode,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.partitions.len());
        for (p, pats) in self.partitions.iter().enumerate() {
            let taxa_p = matrix.partition_taxa(p);
            let scored: Tree;
            let t = match mode {
                MissingMode::Restrict => {
                    scored = restrict(tree, &taxa_p);
                    &scored
                }
                MissingMode::Wildcard => tree,
            };
            let mut total = 0.0;
            let mut states = vec![MISSING; self.universe];
            for (pattern, &w) in pats.patterns.iter().zip(&pats.weights) {
                for tx in t.taxa().iter() {
                    states[tx] = pattern[tx];
                }
                total += w as f64 * site_log_likelihood(t, &states, branch_len);
            }
            out.push(total);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitch::score;
    use crate::likelihood::log_likelihood;
    use crate::simulate::{simulate_supermatrix, SimulateParams};
    use phylo::generate::{random_tree_on_n, ShapeModel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn compression_preserves_site_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tree = random_tree_on_n(8, ShapeModel::Uniform, &mut rng);
        let m = simulate_supermatrix(&tree, 3, &SimulateParams::default(), None, &mut rng);
        let c = compress(&m);
        assert_eq!(c.partitions.len(), 3);
        for (p, pats) in c.partitions.iter().enumerate() {
            assert_eq!(pats.total_sites() as usize, m.partitions()[p].len());
            assert!(pats.len() <= m.partitions()[p].len());
            assert!(!pats.is_empty());
        }
    }

    #[test]
    fn compressed_scores_equal_uncompressed() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tree = random_tree_on_n(10, ShapeModel::Uniform, &mut rng);
        let m = simulate_supermatrix(
            &tree,
            2,
            &SimulateParams {
                sites_per_partition: 100,
                mutation_prob: 0.05, // low rate → many repeated columns
            },
            None,
            &mut rng,
        );
        let c = compress(&m);
        // Compression actually compresses at this rate.
        assert!(c.partitions.iter().any(|p| p.len() < 100));
        for mode in [MissingMode::Restrict, MissingMode::Wildcard] {
            for _ in 0..3 {
                let cand = random_tree_on_n(10, ShapeModel::Uniform, &mut rng);
                assert_eq!(c.parsimony(&cand, &m, mode), score(&cand, &m, mode));
                let a = c.log_likelihood(&cand, &m, 0.1, mode);
                let b = log_likelihood(&cand, &m, 0.1, mode);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-9, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn constant_alignment_compresses_to_one_pattern_per_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let tree = random_tree_on_n(6, ShapeModel::Uniform, &mut rng);
        let m = simulate_supermatrix(
            &tree,
            2,
            &SimulateParams {
                sites_per_partition: 50,
                mutation_prob: 0.0, // no mutations → all sites constant
            },
            None,
            &mut rng,
        );
        let c = compress(&m);
        for pats in &c.partitions {
            // One pattern per distinct root draw — constant per site, but
            // the root base varies per site, so at most 4 patterns.
            assert!(pats.len() <= 4, "{}", pats.len());
        }
    }
}
