//! # gentrius-msa — the supermatrix substrate
//!
//! The data layer behind the paper's motivation (§I): partitioned
//! multiple-sequence-alignment supermatrices with missing data. It
//! provides DNA supermatrices with per-gene partitions (PHYLIP +
//! RAxML-style partition-file I/O), Jukes–Cantor-style sequence simulation
//! along a species tree, and Fitch parsimony scoring with the two
//! missing-data policies that decide whether terraces exist:
//!
//! * [`MissingMode::Restrict`] — each partition is scored on the tree
//!   restricted to the taxa with data (the supermatrix-tool convention).
//!   Under this policy every tree of a Gentrius stand has **identical**
//!   per-partition scores — Sanderson et al.'s terrace property, verified
//!   end-to-end in `tests/terrace_property.rs`;
//! * [`MissingMode::Wildcard`] — missing cells as wildcards on the full
//!   tree, the naive policy that breaks the property.
//!
//! ```
//! use gentrius_msa::{score, simulate_supermatrix, MissingMode, SimulateParams};
//! use phylo::generate::{random_tree_on_n, ShapeModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let tree = random_tree_on_n(8, ShapeModel::Uniform, &mut rng);
//! let matrix = simulate_supermatrix(&tree, 2, &SimulateParams::default(), None, &mut rng);
//! let s = score(&tree, &matrix, MissingMode::Restrict);
//! assert_eq!(s.per_partition.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod alignment;
pub mod fitch;
pub mod likelihood;
pub mod patterns;
pub mod simulate;

pub use alignment::{decode, encode, Partition, Supermatrix, MISSING};
pub use fitch::{fitch_site, score, MissingMode, ParsimonyScore};
pub use likelihood::{log_likelihood, site_log_likelihood};
pub use patterns::{compress, CompressedMatrix, PartitionPatterns};
pub use simulate::{simulate_supermatrix, SimulateParams};
