//! Loom models of the batched-counter protocol (§III-B): flush → limit
//! check → cause CAS → stop flag, and the paper's bounded-overshoot
//! guarantee. Build and run with
//! `RUSTFLAGS="--cfg loom" cargo test -p gentrius-parallel --test loom_counters`.
#![cfg(loom)]

use gentrius_core::config::{StopCause, StoppingRules};
use gentrius_parallel::{FlushThresholds, GlobalCounters, LocalCounters};
use loom::sync::Arc;

fn small_thresholds() -> FlushThresholds {
    FlushThresholds {
        stand_trees: 2,
        intermediate_states: 2,
        dead_ends: 2,
    }
}

/// The ordering contract behind the `stopped()` Acquire fix: any thread
/// that observes the stop flag must also observe the cause. (The loom
/// shim explores sequentially consistent interleavings, so this checks
/// the *protocol order* — cause CAS strictly before flag store; the
/// weak-memory half of the argument is TSan/Miri territory.)
#[test]
fn observed_stop_always_has_a_cause() {
    loom::model(|| {
        let g = Arc::new(GlobalCounters::new(StoppingRules::counts(2, u64::MAX)));
        let g2 = Arc::clone(&g);
        let h = loom::thread::spawn(move || {
            let mut l = LocalCounters::new(&g2, small_thresholds());
            l.stand_tree();
            l.stand_tree(); // flush: hits the limit, raises stop
        });
        if g.stopped() {
            assert!(
                g.stop_cause().is_some(),
                "stop flag visible before its cause"
            );
        }
        h.join().unwrap();
        assert!(g.stopped());
        assert_eq!(g.stop_cause(), Some(StopCause::StandTreeLimit));
    });
}

/// Two workers racing to raise different causes: exactly one wins, and
/// the answer never changes once set.
#[test]
fn first_cause_wins_under_contention() {
    loom::model(|| {
        let g = Arc::new(GlobalCounters::new(StoppingRules::unlimited()));
        let g2 = Arc::clone(&g);
        let h = loom::thread::spawn(move || g2.raise_stop(StopCause::StateLimit));
        g.raise_stop(StopCause::StandTreeLimit);
        let first = g.stop_cause();
        h.join().unwrap();
        assert!(matches!(
            first,
            None | Some(StopCause::StandTreeLimit) | Some(StopCause::StateLimit)
        ));
        let settled = g.stop_cause().expect("both raises done, cause must be set");
        if let Some(f) = first {
            assert_eq!(f, settled, "cause changed after being set");
        }
        assert!(g.stopped());
    });
}

/// The paper's overshoot bound: workers poll `stopped()` between batches,
/// so the global total can exceed the limit by at most one batch per
/// thread — in every schedule.
#[test]
fn overshoot_is_bounded_by_one_batch_per_thread() {
    const LIMIT: u64 = 2;
    const BATCH: u64 = 2;
    const THREADS: u64 = 2;
    loom::model(|| {
        let g = Arc::new(GlobalCounters::new(StoppingRules::counts(LIMIT, u64::MAX)));
        let work = |g: Arc<GlobalCounters>| {
            let mut l = LocalCounters::new(
                &g,
                FlushThresholds {
                    stand_trees: BATCH,
                    intermediate_states: u64::MAX,
                    dead_ends: u64::MAX,
                },
            );
            // Up to 3 batches, checking the stop flag between batches as
            // the engine's worker loop does.
            for _ in 0..3 {
                if g.stopped() {
                    break;
                }
                l.stand_tree();
                l.stand_tree();
            }
        };
        let g2 = Arc::clone(&g);
        let h = loom::thread::spawn(move || work(g2));
        work(Arc::clone(&g));
        h.join().unwrap();
        let total = g.snapshot().stand_trees;
        assert!(g.stopped(), "limit reached but stop never raised");
        assert!(
            (LIMIT..=LIMIT + BATCH * THREADS).contains(&total),
            "overshoot bound violated: total={total}"
        );
    });
}
