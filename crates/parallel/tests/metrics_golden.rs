//! Golden-file test for the schema-v2 run-metrics export: a fully
//! synthetic [`ParallelRunResult`] with fixed values must serialize
//! byte-for-byte to the checked-in fixture. Any intentional schema change
//! must bump `METRICS_VERSION` and regenerate
//! `tests/golden/run_metrics_v2.json` (the failure message prints the
//! actual document).

#![cfg(not(loom))]

use gentrius_core::config::StopCause;
use gentrius_core::stats::RunStats;
use gentrius_parallel::obs::json::validate;
use gentrius_parallel::obs::{render_run_metrics, METRICS_VERSION};
use gentrius_parallel::{
    EngineReport, FlushThresholds, Heartbeat, MonitorReport, ParallelRunResult, SchedulerCounts,
    TaskSpan, WorkerReport,
};
use std::time::Duration;

fn stats(trees: u64, states: u64, dead: u64) -> RunStats {
    RunStats {
        stand_trees: trees,
        intermediate_states: states,
        dead_ends: dead,
    }
}

fn sched(steals: u64, failed: u64, parks: u64, splits: u64, executed: u64) -> SchedulerCounts {
    SchedulerCounts {
        steals,
        failed_steals: failed,
        parks,
        splits,
        executed,
    }
}

/// A synthetic two-worker run with every field pinned to a deterministic
/// value (durations chosen so `f64` formatting is exact).
fn fixture_result() -> (ParallelRunResult, FlushThresholds) {
    let per_worker = vec![sched(3, 1, 2, 5, 5), sched(0, 4, 3, 1, 3)];
    let result = ParallelRunResult {
        stats: stats(40, 100, 12),
        stop: Some(StopCause::TimeLimit),
        elapsed: Duration::from_millis(125),
        threads: 2,
        initial_tree: 1,
        prefix: stats(0, 4, 0),
        stolen_tasks: 6,
        scheduler: EngineReport {
            steals: 3,
            failed_steals: 5,
            parks: 5,
            splits: 6,
            executed: 8,
            injected: 2,
            deque_grows: 1,
            per_worker: per_worker.clone(),
        },
        workers: vec![
            WorkerReport {
                tasks_executed: 5,
                stats: stats(25, 60, 7),
                sched: per_worker[0],
                spans: vec![
                    TaskSpan {
                        start: 0.0,
                        end: 0.0625,
                        snapshot_depth: 0,
                    },
                    TaskSpan {
                        start: 0.0625,
                        end: 0.125,
                        snapshot_depth: 3,
                    },
                ],
            },
            WorkerReport {
                tasks_executed: 3,
                stats: stats(15, 36, 5),
                sched: per_worker[1],
                spans: vec![],
            },
        ],
        monitor: MonitorReport {
            ticks: 2,
            time_limit_raised: true,
            dropped_heartbeats: 0,
            heartbeats: vec![
                Heartbeat {
                    elapsed_secs: 0.0625,
                    stats: stats(8, 20, 2),
                    per_worker: vec![sched(1, 0, 1, 2, 2), sched(0, 2, 1, 0, 1)],
                },
                Heartbeat {
                    elapsed_secs: 0.125,
                    stats: stats(40, 100, 12),
                    per_worker,
                },
            ],
        },
    };
    let flush = FlushThresholds::paper_defaults();
    (result, flush)
}

#[test]
fn schema_v2_round_trips_against_the_golden_fixture() {
    assert_eq!(METRICS_VERSION, 2, "bump the fixture with the schema");
    let (result, flush) = fixture_result();
    let doc = render_run_metrics(&result, &flush);
    validate(&doc).expect("export must be valid JSON");
    let golden = include_str!("golden/run_metrics_v2.json");
    assert_eq!(
        doc,
        golden.trim_end(),
        "metrics schema drifted from the v2 fixture; if intentional, bump \
         METRICS_VERSION and regenerate the fixture. Actual:\n{doc}"
    );
}

#[test]
fn export_is_stable_across_calls() {
    let (result, flush) = fixture_result();
    assert_eq!(
        render_run_metrics(&result, &flush),
        render_run_metrics(&result, &flush)
    );
}

#[test]
fn real_run_exports_validate_and_carry_the_header() {
    use gentrius_core::config::GentriusConfig;
    use gentrius_core::problem::StandProblem;
    use gentrius_parallel::{run_parallel, ParallelConfig};
    use phylo::newick::parse_forest;

    let (_, trees) = parse_forest(["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]).unwrap();
    let problem = StandProblem::from_constraints(trees).unwrap();
    let mut pcfg = ParallelConfig::with_threads(2);
    pcfg.trace = true;
    let r = run_parallel(&problem, &GentriusConfig::exhaustive(), &pcfg).unwrap();
    let doc = render_run_metrics(&r, &pcfg.flush);
    validate(&doc).unwrap();
    assert!(doc.starts_with("{\"schema\":\"gentrius-run-metrics\",\"version\":2,"));
    assert!(doc.contains("\"stop_cause\":null"));
    assert!(doc.contains("\"monitor\":{\"ticks\":"));
}
