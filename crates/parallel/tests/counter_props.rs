//! Property tests for the §III-B batched-counter protocol.
//!
//! Two invariants the paper relies on, checked under randomized flush
//! thresholds:
//!
//! 1. **Exactness after drain** — batching delays visibility but never
//!    loses or duplicates counts: once every `LocalCounters` has flushed,
//!    the global totals equal the sum of the per-context lifetime totals.
//! 2. **Bounded overshoot** — a stopping rule may fire late, but only by
//!    the counts still buffered: the final total never exceeds
//!    `limit + batch × contexts` when every context polls the stop flag
//!    between increments (§III-B: "limits can be overshot by up to one
//!    batch per thread").

use gentrius_core::stats::RunStats;
use gentrius_core::{StopCause, StoppingRules};
use gentrius_parallel::{FlushThresholds, GlobalCounters, LocalCounters};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn totals_exact_after_concurrent_drain(
        (bt, bs, bd) in (1u64..64, 1u64..64, 1u64..64),
        counts in proptest::collection::vec((0u64..500, 0u64..500, 0u64..500), 1..8),
    ) {
        let thresholds = FlushThresholds {
            stand_trees: bt,
            intermediate_states: bs,
            dead_ends: bd,
        };
        let g = GlobalCounters::new(StoppingRules::unlimited());
        std::thread::scope(|s| {
            for &(trees, states, dead) in &counts {
                let g = &g;
                s.spawn(move || {
                    let mut l = LocalCounters::new(g, thresholds);
                    // Interleave the three kinds so flushes of different
                    // dimensions trigger at staggered points.
                    let max = trees.max(states).max(dead);
                    for i in 0..max {
                        if i < trees {
                            l.stand_tree();
                        }
                        if i < states {
                            l.intermediate_state();
                        }
                        if i < dead {
                            l.dead_end();
                        }
                    }
                    // Dropping `l` performs the final drain.
                });
            }
        });
        let expected = RunStats {
            stand_trees: counts.iter().map(|c| c.0).sum(),
            intermediate_states: counts.iter().map(|c| c.1).sum(),
            dead_ends: counts.iter().map(|c| c.2).sum(),
        };
        prop_assert_eq!(g.snapshot(), expected);
    }

    #[test]
    fn stand_tree_limit_overshoot_is_bounded(
        batch in 1u64..64,
        contexts in 1usize..8,
        limit in 1u64..1500,
    ) {
        let rules = StoppingRules::counts(limit, u64::MAX);
        let thresholds = FlushThresholds {
            stand_trees: batch,
            intermediate_states: batch,
            dead_ends: batch,
        };
        let g = GlobalCounters::new(rules);
        let mut locals: Vec<LocalCounters> =
            (0..contexts).map(|_| LocalCounters::new(&g, thresholds)).collect();
        // Round-robin: each context polls the stop flag, then records one
        // stand tree — the worker loop's poll-then-step discipline.
        let mut steps = 0u64;
        'work: loop {
            for l in locals.iter_mut() {
                if g.stopped() {
                    break 'work;
                }
                l.stand_tree();
                steps += 1;
                prop_assert!(steps <= 4 * (limit + batch * contexts as u64),
                    "stop flag never rose");
            }
        }
        drop(locals); // final drain
        let total = g.snapshot().stand_trees;
        prop_assert_eq!(g.stop_cause(), Some(StopCause::StandTreeLimit));
        prop_assert!(total >= limit, "stopped below the limit: {} < {}", total, limit);
        prop_assert!(
            total <= limit + batch * contexts as u64,
            "overshoot: {} > {} + {} * {}",
            total, limit, batch, contexts
        );
    }

    #[test]
    fn state_limit_overshoot_is_bounded(
        batch in 1u64..64,
        contexts in 1usize..8,
        limit in 1u64..1500,
    ) {
        let rules = StoppingRules::counts(u64::MAX, limit);
        let thresholds = FlushThresholds {
            stand_trees: batch,
            intermediate_states: batch,
            dead_ends: batch,
        };
        let g = GlobalCounters::new(rules);
        let mut locals: Vec<LocalCounters> =
            (0..contexts).map(|_| LocalCounters::new(&g, thresholds)).collect();
        let mut steps = 0u64;
        'work: loop {
            for l in locals.iter_mut() {
                if g.stopped() {
                    break 'work;
                }
                l.intermediate_state();
                steps += 1;
                prop_assert!(steps <= 4 * (limit + batch * contexts as u64),
                    "stop flag never rose");
            }
        }
        drop(locals);
        let total = g.snapshot().intermediate_states;
        prop_assert_eq!(g.stop_cause(), Some(StopCause::StateLimit));
        prop_assert!(total >= limit);
        prop_assert!(
            total <= limit + batch * contexts as u64,
            "overshoot: {} > {} + {} * {}",
            total, limit, batch, contexts
        );
    }
}
