//! Loom models of monitor-initiated stopping: the monitor's
//! `enforce_time_limit` action races parked and mid-flush workers, and in
//! every schedule the stop must be observed, parked workers must wake
//! (no lost wakeups), and the pool must reach its terminal state. Build
//! and run with
//! `RUSTFLAGS="--cfg loom" cargo test -p gentrius-parallel --test loom_monitor`.
//!
//! The models use `max_time = 0`, which makes `time_limit_exceeded`
//! deterministically true — loom has no clock, so the interesting part is
//! not *when* the monitor fires but how its raise + shutdown interleaves
//! with the workers' park/flush protocols.
#![cfg(loom)]

use gentrius_core::config::{StopCause, StoppingRules};
use gentrius_parallel::obs::enforce_time_limit;
use gentrius_parallel::{FlushThresholds, GlobalCounters, LocalCounters, TaskPool};
use loom::sync::Arc;
use std::time::Duration;

fn expired_clock() -> StoppingRules {
    StoppingRules {
        max_stand_trees: None,
        max_intermediate_states: None,
        max_time: Some(Duration::ZERO),
    }
}

/// The headline schedule: a worker may be anywhere in its park sequence
/// (idlers increment, work re-check, condvar wait) when the monitor
/// enforces the time limit. The worker must return `None` in every
/// interleaving — a missed wake deadlocks the model.
#[test]
fn monitor_stop_wakes_a_parked_worker() {
    loom::model(|| {
        let g = Arc::new(GlobalCounters::new(expired_clock()));
        let p = Arc::new(TaskPool::new(2, 4));
        // Worker 0 notionally owns a preregistered chunk, so worker 1
        // cannot self-drain the pool; only the monitor can release it.
        p.preregister_active(1);
        let p2 = Arc::clone(&p);
        let parked = loom::thread::spawn(move || p2.worker(1).next_task());
        // One monitor tick.
        assert!(enforce_time_limit(&g, &p));
        assert_eq!(g.stop_cause(), Some(StopCause::TimeLimit));
        assert!(parked.join().unwrap().is_none());
        assert!(p.is_done());
    });
}

/// The monitor races a worker that is mid-flush when both a count limit
/// and the wall-clock limit are breachable: whichever raise wins the CAS
/// must stick (first-writer-wins), the flusher's own shutdown path and
/// the monitor's must compose idempotently, and a concurrently parked
/// worker must still be released.
#[test]
fn monitor_stop_races_a_flushing_worker() {
    loom::model(|| {
        let rules = StoppingRules {
            max_stand_trees: Some(0),
            max_intermediate_states: None,
            max_time: Some(Duration::ZERO),
        };
        let g = Arc::new(GlobalCounters::new(rules));
        let p = Arc::new(TaskPool::new(2, 4));
        p.preregister_active(1); // the flusher's in-flight chunk
        let (g2, p2) = (Arc::clone(&g), Arc::clone(&p));
        let flusher = loom::thread::spawn(move || {
            let w = p2.worker(0);
            let mut local = LocalCounters::new(&g2, FlushThresholds::unbatched());
            local.intermediate_state();
            // Flushes; breaches the 0-tree limit.
            local.stand_tree();
            // The engine's worker loop: having observed the stop, shut
            // the pool down so parked peers wake.
            if g2.stopped() {
                p2.shutdown();
            }
            local.flush();
            w.task_done();
        });
        let p3 = Arc::clone(&p);
        let parked = loom::thread::spawn(move || p3.worker(1).next_task());
        // One monitor tick, racing both workers.
        assert!(enforce_time_limit(&g, &p));
        flusher.join().unwrap();
        assert!(parked.join().unwrap().is_none());
        // Exactly one cause won, and it stayed won.
        let cause = g.stop_cause().expect("a stop was raised");
        assert!(
            cause == StopCause::TimeLimit || cause == StopCause::StandTreeLimit,
            "unexpected cause {cause:?}"
        );
        assert!(p.is_done());
        assert_eq!(g.snapshot().stand_trees, 1, "flush lost in the race");
    });
}
