//! Stress tests of the threaded engine: randomized instances, oversubscribed
//! thread counts, tiny queue capacities, and stopping rules racing against
//! completion — the counters and stand sets must stay exact or the
//! overshoot must stay within its documented bound.

use gentrius_core::{
    CollectNewick, CountOnly, GentriusConfig, StandProblem, StopCause, StoppingRules,
};
use gentrius_parallel::{run_parallel, run_parallel_with_sinks, FlushThresholds, ParallelConfig};
use phylo::bitset::BitSet;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::ops::restrict;
use phylo::taxa::TaxonSet;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_problem(seed: u64, n_range: std::ops::RangeInclusive<usize>) -> (TaxonSet, StandProblem) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(n_range);
    let taxa = TaxonSet::with_synthetic(n);
    loop {
        let source = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
        let m = rng.gen_range(3..=5);
        let mut covered = BitSet::new(n);
        let mut cols = Vec::new();
        for _ in 0..m {
            let k = rng.gen_range(4..=(n * 2 / 3).max(4));
            let mut s = BitSet::new(n);
            while s.count() < k {
                s.insert(rng.gen_range(0..n));
            }
            covered.union_with(&s);
            cols.push(s);
        }
        if covered.count() != n {
            continue;
        }
        let constraints: Vec<_> = cols.iter().map(|c| restrict(&source, c)).collect();
        if let Ok(p) = StandProblem::from_constraints(constraints) {
            return (taxa, p);
        }
    }
}

#[test]
fn oversubscribed_threads_and_tiny_queues_stay_exact() {
    let config = GentriusConfig {
        stopping: StoppingRules::counts(100_000, 500_000),
        ..GentriusConfig::default()
    };
    let mut verified = 0;
    for seed in 0..12u64 {
        let (_, problem) = random_problem(seed, 10..=14);
        let serial = gentrius_core::run_serial(&problem, &config, &mut CountOnly).unwrap();
        if !serial.complete() {
            continue;
        }
        for (threads, cap) in [(6usize, Some(1usize)), (9, Some(2)), (16, None)] {
            let mut pcfg = ParallelConfig::with_threads(threads);
            pcfg.queue_capacity = cap;
            let r = run_parallel(&problem, &config, &pcfg).unwrap();
            assert!(r.complete(), "seed {seed} threads {threads}");
            assert_eq!(r.stats, serial.stats, "seed {seed} threads {threads}");
        }
        verified += 1;
    }
    assert!(verified >= 6, "only {verified} instances verified");
}

#[test]
fn repeated_runs_are_count_stable() {
    // Thread scheduling varies between runs; the totals must not.
    let (_, problem) = random_problem(99, 12..=12);
    let config = GentriusConfig {
        stopping: StoppingRules::counts(200_000, 500_000),
        ..GentriusConfig::default()
    };
    let first = run_parallel(&problem, &config, &ParallelConfig::with_threads(4)).unwrap();
    if !first.complete() {
        return; // identity only guaranteed for complete runs
    }
    for _ in 0..5 {
        let r = run_parallel(&problem, &config, &ParallelConfig::with_threads(4)).unwrap();
        assert_eq!(r.stats, first.stats);
    }
}

#[test]
fn stand_sets_stable_under_thread_count() {
    let (taxa, problem) = random_problem(7, 10..=12);
    let config = GentriusConfig {
        stopping: StoppingRules::counts(100_000, 400_000),
        ..GentriusConfig::default()
    };
    let collect = |threads: usize| -> Option<Vec<String>> {
        let (r, sinks) = run_parallel_with_sinks(
            &problem,
            &config,
            &ParallelConfig::with_threads(threads),
            |_| CollectNewick::with_cap(&taxa, 200_000),
        )
        .unwrap();
        r.complete().then(|| {
            let mut v: Vec<String> = sinks.into_iter().flat_map(|s| s.out).collect();
            v.sort();
            v
        })
    };
    let Some(base) = collect(1) else { return };
    for threads in [2, 3, 5, 8] {
        assert_eq!(collect(threads).as_ref(), Some(&base), "threads {threads}");
    }
}

#[test]
fn overshoot_stays_within_one_batch_per_context() {
    let (_, problem) = random_problem(3, 12..=14);
    // Make sure the instance is big enough to hit the limit.
    let probe = gentrius_core::run_serial(
        &problem,
        &GentriusConfig {
            stopping: StoppingRules::counts(5_000, 100_000),
            ..GentriusConfig::default()
        },
        &mut CountOnly,
    )
    .unwrap();
    if probe.stop != Some(StopCause::StandTreeLimit) {
        return;
    }
    let limit = 5_000u64;
    for threads in [2usize, 4] {
        for batch in [1u64, 16, 256] {
            let mut pcfg = ParallelConfig::with_threads(threads);
            pcfg.flush = FlushThresholds {
                stand_trees: batch,
                intermediate_states: batch * 8,
                dead_ends: batch,
            };
            let cfg = GentriusConfig {
                stopping: StoppingRules::counts(limit, u64::MAX),
                ..GentriusConfig::default()
            };
            let r = run_parallel(&problem, &cfg, &pcfg).unwrap();
            assert_eq!(r.stop, Some(StopCause::StandTreeLimit));
            assert!(r.stats.stand_trees >= limit);
            let bound = limit + batch * (threads as u64 + 1);
            assert!(
                r.stats.stand_trees <= bound,
                "threads {threads} batch {batch}: {} > {bound}",
                r.stats.stand_trees
            );
        }
    }
}
