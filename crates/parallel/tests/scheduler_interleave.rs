//! Interleaving stress tests for the two-level work-stealing scheduler.
//!
//! These tests hammer the pool and the raw Chase–Lev deque from many
//! threads with synthetic task graphs and assert the only property that
//! matters: **every task is executed exactly once** — none lost (the pool
//! would either hang or terminate early) and none double-executed (the
//! deque's pop/steal race would hand one task to two threads). They also
//! pin down the termination protocol: accounting conservation and the
//! `preregister_active` premature-termination regression.

use gentrius_parallel::{Steal, StealDeque, Task, TaskPool, WorkerHandle};
use phylo::taxa::TaxonId;
use phylo::tree::EdgeId;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// A synthetic task carrying `id` in its branch list.
fn task(id: usize) -> Task {
    Task::probe(TaxonId(0), vec![EdgeId(id as u32)])
}

fn id_of(t: &Task) -> usize {
    t.branches[0].0 as usize
}

/// Executes task `id` of an implicit binary tree on `n` nodes: marks it,
/// then schedules both children — through the worker's own deque when the
/// capacity gate allows, inline otherwise (exactly the engine's "no room:
/// keep the work yourself" fallback).
fn execute(
    w: &WorkerHandle<'_>,
    id: usize,
    n: usize,
    executed: &[AtomicU32],
    inline: &AtomicUsize,
) {
    executed[id].fetch_add(1, Ordering::Relaxed);
    for c in [2 * id + 1, 2 * id + 2] {
        if c < n && w.try_push(task(c)).is_err() {
            inline.fetch_add(1, Ordering::Relaxed);
            execute(w, c, n, executed, inline);
        }
    }
}

/// Runs the binary-tree workload on a fresh pool and checks exactly-once
/// execution plus scheduling-accounting conservation.
fn run_tree_stress(workers: usize, capacity: usize, seed: u64, n: usize) -> u64 {
    let pool = TaskPool::with_seed(workers, capacity, seed);
    let executed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let inline = AtomicUsize::new(0);
    pool.inject(task(0));
    std::thread::scope(|s| {
        for wid in 0..workers {
            let (pool, executed, inline) = (&pool, &executed[..], &inline);
            s.spawn(move || {
                let w = pool.worker(wid);
                while let Some(t) = w.next_task() {
                    execute(&w, id_of(&t), n, executed, inline);
                    w.task_done();
                }
            });
        }
    });
    assert!(pool.is_done());
    for (i, c) in executed.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "task {i} executed {} times (workers={workers} capacity={capacity} seed={seed})",
            c.load(Ordering::Relaxed)
        );
    }
    // Conservation: every node of the task tree was scheduled exactly one
    // way — deque push, injector, or inline fallback.
    let scheduled = pool.total_submitted() + pool.total_injected();
    assert_eq!(
        scheduled + inline.load(Ordering::Relaxed),
        n,
        "scheduling accounting leaked (workers={workers} capacity={capacity} seed={seed})"
    );
    let counts = pool.scheduler_counts();
    let splits: u64 = counts.iter().map(|c| c.splits).sum();
    assert_eq!(
        splits as usize,
        pool.total_submitted(),
        "split stat out of sync"
    );
    counts.iter().map(|c| c.steals).sum()
}

#[test]
fn task_tree_executes_each_task_exactly_once() {
    let mut total_steals = 0u64;
    for workers in [2usize, 4, 8] {
        // capacity 2 starves the deques (heavy inline fallback + injector
        // traffic), 64 piles them high (deque growth + long steal chains).
        for capacity in [2usize, 8, 64] {
            for seed in [1u64, 42] {
                total_steals += run_tree_stress(workers, capacity, seed, 30_000);
            }
        }
    }
    assert!(total_steals > 0, "stress never exercised the steal path");
}

#[test]
fn deque_survives_randomized_push_pop_steal_interleavings() {
    const N: usize = 50_000;
    for seed in [3u64, 9, 27] {
        let d: StealDeque<usize> = StealDeque::with_min_capacity(8);
        let seen: Vec<AtomicU32> = (0..N).map(|_| AtomicU32::new(0)).collect();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let (d, seen, done) = (&d, &seen[..], &done);
                s.spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && d.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Owner: a seeded xorshift decides between pushing the next
            // item and popping — mixing the LIFO end into the thieves'
            // FIFO traffic at unpredictable points.
            let mut x = seed | 1;
            let mut next = 0usize;
            while next < N {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 3 != 0 {
                    d.push(next);
                    next += 1;
                } else if let Some(v) = d.pop() {
                    seen[v].fetch_add(1, Ordering::Relaxed);
                }
            }
            while let Some(v) = d.pop() {
                seen[v].fetch_add(1, Ordering::Relaxed);
            }
            done.store(true, Ordering::Release);
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} seen {} times (seed={seed})",
                c.load(Ordering::Relaxed)
            );
        }
    }
}

/// Regression: work handed to a worker directly (bypassing deques and the
/// injector, as the engine does with a worker's first replayed chunk) must
/// be pre-counted, or an idle worker that wakes first can observe
/// "nothing in flight" and terminate the whole pool before the chunk runs.
#[test]
fn preregistered_chunks_defer_termination_under_load() {
    let pool = TaskPool::new(4, 8);
    const CHUNKS: usize = 2;
    const CHILDREN: usize = 5;
    pool.preregister_active(CHUNKS);
    let executed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Three consumers with nothing to do yet: they must park, not
        // declare the pool drained.
        for wid in 1..4 {
            let (pool, executed) = (&pool, &executed);
            s.spawn(move || {
                let w = pool.worker(wid);
                while let Some(_t) = w.next_task() {
                    executed.fetch_add(1, Ordering::Relaxed);
                    w.task_done();
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !pool.is_done(),
            "pool terminated while preregistered chunks were still pending"
        );
        // Worker 0 now runs its direct chunks, fanning out children for
        // the parked consumers, and balances each chunk with task_done.
        // If the consumers haven't drained the deque yet, the capacity
        // hint rejects the push and the child runs inline, exactly as the
        // engine handles a full deque.
        let w0 = pool.worker(0);
        for chunk in 0..CHUNKS {
            for c in 0..CHILDREN {
                if w0.try_push(task(chunk * CHILDREN + c)).is_err() {
                    executed.fetch_add(1, Ordering::Relaxed);
                }
            }
            w0.task_done();
        }
        while let Some(_t) = w0.next_task() {
            executed.fetch_add(1, Ordering::Relaxed);
            w0.task_done();
        }
    });
    assert!(pool.is_done());
    assert_eq!(executed.load(Ordering::Relaxed), CHUNKS * CHILDREN);
}
