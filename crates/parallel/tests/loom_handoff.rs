//! Loom models of the snapshot-handoff protocol: a task now carries an
//! owned multi-word `StateSnapshot` instead of a replay path, so the
//! deque's publication protocol is all that stands between a thief and a
//! torn checkpoint. These models check (a) that a snapshot pushed
//! concurrently with a steal is observed fully constructed or not at all
//! (loom flags any non-atomic payload race directly), and (b) that the
//! adaptive split gate — a `Relaxed` advisory toggle flipped by the
//! monitor mid-run — can throttle publication but never lose or
//! duplicate a unit of work. Build and run with
//! `RUSTFLAGS="--cfg loom" cargo test -p gentrius-parallel --test loom_handoff`.
#![cfg(loom)]

use gentrius_parallel::{Task, TaskPool};
use loom::sync::Arc;
use phylo::taxa::TaxonId;
use phylo::tree::EdgeId;

/// A stand-in for a snapshot-bearing task: the branch list is a
/// multi-word "checkpoint" whose words are mutually consistent by
/// construction (`k`, `k + 1`), so a torn or reordered observation is
/// detectable by value as well as by loom's race detector.
fn checkpoint_task(k: u32) -> Task {
    Task::probe(TaxonId(k), vec![EdgeId(k), EdgeId(k + 1)])
}

/// The tearing hazard: the owner materializes the snapshot payload with
/// plain (non-atomic) writes, then publishes the task through the deque.
/// In every schedule the thief must observe the payload exactly as built
/// — the deque's release publication is the only thing ordering those
/// plain writes before the steal, and loom reports a data race if it is
/// insufficient.
#[test]
fn stolen_snapshot_is_never_torn() {
    loom::model(|| {
        let p = Arc::new(TaskPool::new(2, 4));
        // A preregistered chunk keeps the pool from draining before the
        // owner publishes, as in the engine's initial split.
        p.preregister_active(1);
        let p2 = Arc::clone(&p);
        let thief = loom::thread::spawn(move || {
            let w = p2.worker(1);
            let mut got = 0usize;
            while let Some(t) = w.next_task() {
                // Checkpoint consistency: both words and the header must
                // match the owner's construction.
                assert_eq!(t.branches.len(), 2, "checkpoint truncated");
                assert_eq!(t.branches[1].0, t.branches[0].0 + 1, "checkpoint torn");
                assert_eq!(t.taxon.0, t.branches[0].0, "header/payload mismatch");
                got += 1;
                w.task_done();
            }
            got
        });
        let w0 = p.worker(0);
        w0.try_push(checkpoint_task(10)).unwrap();
        w0.try_push(checkpoint_task(20)).unwrap();
        w0.task_done(); // the chunk itself completes
        drop(w0);
        assert_eq!(thief.join().unwrap(), 2, "published snapshots lost");
        assert!(p.is_done());
    });
}

/// The adaptive gate races the steal path: the monitor flips the gate
/// (Relaxed stores) while the owner consults `split_allowed` and the
/// thief drains. Whatever the interleaving, the unit of work is executed
/// exactly once — published-and-stolen or kept inline — and the model
/// proves the Relaxed gate traffic is race-free against both.
#[test]
fn split_gate_toggle_never_loses_or_duplicates_work() {
    loom::model(|| {
        let mut pool = TaskPool::new(2, 4);
        pool.set_adaptive(true);
        let p = Arc::new(pool);
        p.preregister_active(1);
        let monitor = {
            let p2 = Arc::clone(&p);
            loom::thread::spawn(move || {
                p2.set_split_gate(false);
                p2.set_split_gate(true);
            })
        };
        let p3 = Arc::clone(&p);
        let thief = loom::thread::spawn(move || {
            let w = p3.worker(1);
            let mut got = 0usize;
            while let Some(_t) = w.next_task() {
                got += 1;
                w.task_done();
            }
            got
        });
        let w0 = p.worker(0);
        // The owner publishes the frame only when the gate (or the idler
        // override) allows it; a closed gate means inline execution of
        // the same unit — never a dropped frame.
        let inline = if w0.split_allowed() {
            w0.try_push(checkpoint_task(5)).unwrap();
            0usize
        } else {
            1usize
        };
        w0.task_done();
        drop(w0);
        let stolen = thief.join().unwrap();
        monitor.join().unwrap();
        assert_eq!(
            stolen + inline,
            1,
            "gate race lost or duplicated the split unit"
        );
        assert!(p.is_done());
    });
}
