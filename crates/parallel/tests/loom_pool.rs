//! Loom models of the pool's park/wake and termination-detection
//! protocol: a task pushed while a worker is parking must never be lost
//! to a sleeping pool, preregistered chunks must hold off termination,
//! and shutdown must wake every sleeper. Build and run with
//! `RUSTFLAGS="--cfg loom" cargo test -p gentrius-parallel --test loom_pool`.
#![cfg(loom)]

use gentrius_parallel::{Task, TaskPool};
use loom::sync::Arc;
use phylo::taxa::TaxonId;
use phylo::tree::EdgeId;

fn task(i: u32) -> Task {
    Task::probe(TaxonId(0), vec![EdgeId(i)])
}

/// The lost-wakeup hazard: worker 1 may be anywhere in its park sequence
/// (idlers increment, work re-check, condvar wait) when worker 0 splits
/// off a task. In every schedule the task must be executed and the pool
/// must terminate — a missed wake would deadlock the model.
#[test]
fn split_task_is_never_lost_to_a_parking_worker() {
    loom::model(|| {
        let p = Arc::new(TaskPool::new(2, 4));
        // Worker 0 starts with a preregistered chunk, as in the engine's
        // initial split, so the pool cannot drain before it acts.
        p.preregister_active(1);
        let p2 = Arc::clone(&p);
        let consumer = loom::thread::spawn(move || {
            let w = p2.worker(1);
            let mut got = 0;
            while let Some(_t) = w.next_task() {
                got += 1;
                w.task_done();
            }
            got
        });
        let w0 = p.worker(0);
        w0.try_push(task(1)).unwrap(); // split off one task mid-chunk
        w0.task_done(); // chunk itself finishes
        drop(w0);
        let got = consumer.join().unwrap();
        assert_eq!(got, 1, "split-off task was lost");
        assert!(p.is_done());
    });
}

/// Termination detection vs. direct hand-off: while a preregistered chunk
/// is in flight, an idle worker must park, not declare the pool drained;
/// the chunk's `task_done` alone releases it.
#[test]
fn preregistered_chunk_defers_termination() {
    loom::model(|| {
        let p = Arc::new(TaskPool::new(2, 4));
        p.preregister_active(1);
        let p2 = Arc::clone(&p);
        let idler = loom::thread::spawn(move || p2.worker(1).next_task());
        let w0 = p.worker(0);
        // The chunk runs to completion without ever touching the queues.
        w0.task_done();
        drop(w0);
        assert!(idler.join().unwrap().is_none());
        assert!(p.is_done(), "drain not detected after final task_done");
    });
}

/// An external stop (stopping rule fired) must wake a parked worker in
/// every schedule, even one that raced into the condvar just before the
/// notify.
#[test]
fn shutdown_wakes_a_parked_worker() {
    loom::model(|| {
        let p = Arc::new(TaskPool::new(2, 4));
        p.preregister_active(1); // keeps the worker from self-draining
        let p2 = Arc::clone(&p);
        let idler = loom::thread::spawn(move || p2.worker(1).next_task());
        p.shutdown();
        assert!(idler.join().unwrap().is_none());
        assert!(p.is_done());
    });
}

/// Injected work races a parking worker: the injector path (length
/// mirror + wake) must be as lost-wakeup-free as the deque path.
#[test]
fn injected_task_reaches_a_parking_worker() {
    loom::model(|| {
        let p = Arc::new(TaskPool::new(2, 4));
        p.preregister_active(1); // the chunk worker 0 is busy with
        let p2 = Arc::clone(&p);
        let consumer = loom::thread::spawn(move || {
            let w = p2.worker(1);
            let mut got = 0;
            while let Some(_t) = w.next_task() {
                got += 1;
                w.task_done();
            }
            got
        });
        let w0 = p.worker(0);
        p.inject(task(9));
        // Balance the preregistered chunk *after* injecting so the pool
        // cannot drain before the task is visible.
        w0.task_done();
        drop(w0);
        assert_eq!(consumer.join().unwrap(), 1, "injected task lost");
        assert!(p.is_done());
    });
}
