//! Regression test for the wall-clock stopping bug the run monitor fixes.
//!
//! Before the monitor existed, `max_time` was evaluated only inside
//! `GlobalCounters::add_and_check`, i.e. only when a worker flushed its
//! local counter batch. A run whose workers never reach the flush
//! thresholds (or sit parked on the idle condvar) re-examined the clock
//! *never*, so the limit could be overshot without bound — at the old
//! HEAD, this test ran until killed. With the monitor, the engine stops
//! within a small multiple of the limit regardless of flush activity.

#![cfg(not(loom))]

use gentrius_core::config::{GentriusConfig, StopCause, StoppingRules};
use gentrius_core::problem::StandProblem;
use gentrius_parallel::{run_parallel, FlushThresholds, MonitorConfig, ParallelConfig};
use phylo::newick::parse_forest;
use std::time::{Duration, Instant};

/// Two long caterpillar trees sharing only the taxa `X` and `Y`: the
/// joint constraints are so loose that almost every insertion position is
/// admissible, making the stand astronomically large — the run cannot
/// finish on its own and must be cut off by a stopping rule.
fn blowup_problem() -> StandProblem {
    let a = "((((((((A1,A2),A3),A4),A5),A6),A7),X),Y);";
    let b = "((((((((B1,B2),B3),B4),B5),B6),B7),X),Y);";
    let (_, trees) = parse_forest([a, b]).unwrap();
    StandProblem::from_constraints(trees).unwrap()
}

fn time_only(limit: Duration) -> GentriusConfig {
    GentriusConfig {
        stopping: StoppingRules {
            max_stand_trees: None,
            max_intermediate_states: None,
            max_time: Some(limit),
        },
        ..GentriusConfig::default()
    }
}

/// Flush thresholds no run will ever reach: the flush-side time check
/// (the old, buggy enforcement point) never executes.
fn unreachable_flush() -> FlushThresholds {
    FlushThresholds {
        stand_trees: u64::MAX,
        intermediate_states: u64::MAX,
        dead_ends: u64::MAX,
    }
}

#[test]
fn time_limit_stops_starved_workers_via_monitor() {
    let limit = Duration::from_millis(50);
    let mut pcfg = ParallelConfig::with_threads(4);
    pcfg.flush = unreachable_flush();
    let t0 = Instant::now();
    let r = run_parallel(&blowup_problem(), &time_only(limit), &pcfg).unwrap();
    let wall = t0.elapsed();
    assert_eq!(r.stop, Some(StopCause::TimeLimit));
    assert!(
        wall < Duration::from_secs(1),
        "50ms limit took {wall:?} to enforce (unbounded overshoot bug?)"
    );
    assert!(r.monitor.time_limit_raised);
    assert!(r.monitor.ticks >= 1);
    assert!(!r.monitor.heartbeats.is_empty());
    // Work actually happened before the cutoff.
    assert!(r.stats.intermediate_states > 0);
}

#[test]
fn heartbeats_sample_per_worker_progress() {
    let limit = Duration::from_millis(80);
    let mut pcfg = ParallelConfig::with_threads(3);
    pcfg.flush = unreachable_flush();
    pcfg.monitor = Some(MonitorConfig {
        tick: Duration::from_millis(5),
        heartbeat_capacity: 1024,
        checkpoint_every: None,
    });
    let r = run_parallel(&blowup_problem(), &time_only(limit), &pcfg).unwrap();
    assert_eq!(r.stop, Some(StopCause::TimeLimit));
    assert!(
        r.monitor.heartbeats.len() >= 2,
        "{}",
        r.monitor.heartbeats.len()
    );
    for h in &r.monitor.heartbeats {
        assert_eq!(h.per_worker.len(), 3);
    }
    for pair in r.monitor.heartbeats.windows(2) {
        assert!(pair[0].elapsed_secs <= pair[1].elapsed_secs);
    }
    // The final heartbeat is sampled at shutdown, after every worker
    // flushed its remaining batch, so it must agree with the run totals.
    let last = r.monitor.heartbeats.last().unwrap();
    assert_eq!(last.stats, r.stats);
}

#[test]
fn disabled_monitor_still_enforces_time_on_flushes() {
    // With the monitor off, enforcement falls back to the flush-side
    // check — reachable thresholds keep it working (the pre-monitor
    // behavior for busy workers).
    let limit = Duration::from_millis(50);
    let mut pcfg = ParallelConfig::with_threads(2);
    pcfg.flush = FlushThresholds::unbatched();
    pcfg.monitor = None;
    let r = run_parallel(&blowup_problem(), &time_only(limit), &pcfg).unwrap();
    assert_eq!(r.stop, Some(StopCause::TimeLimit));
    assert_eq!(r.monitor.ticks, 0);
    assert!(r.monitor.heartbeats.is_empty());
}
