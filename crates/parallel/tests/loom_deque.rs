//! Loom models of the Chase–Lev deque: every interleaving (up to the
//! preemption bound) of the owner's push/pop against concurrent thieves,
//! including the last-item CAS race and the `grow` buffer swap with its
//! retire/reclaim protocol. Build and run with
//! `RUSTFLAGS="--cfg loom" cargo test -p gentrius-parallel --test loom_deque`.
#![cfg(loom)]

use gentrius_parallel::deque::{Steal, StealDeque};
use loom::sync::Arc;

/// The classic Chase–Lev hazard: one item left, owner pops while a thief
/// steals. The `top` CAS must hand the item to exactly one of them in
/// every schedule — never both (double execution), never neither (lost
/// task).
#[test]
fn last_item_goes_to_exactly_one_of_owner_and_thief() {
    loom::model(|| {
        let d = Arc::new(StealDeque::with_min_capacity(2));
        d.push(7usize);
        let d2 = Arc::clone(&d);
        let thief = loom::thread::spawn(move || match d2.steal() {
            Steal::Success(v) => Some(v),
            _ => None,
        });
        let popped = d.pop();
        let stolen = thief.join().unwrap();
        let takers = popped.is_some() as usize + stolen.is_some() as usize;
        assert_eq!(takers, 1, "popped={popped:?} stolen={stolen:?}");
        assert_eq!(popped.or(stolen), Some(7));
    });
}

/// Two items, a thief stealing both ends of the window while the owner
/// pops: every item is delivered exactly once, across all schedules.
#[test]
fn concurrent_pop_and_steal_deliver_each_item_once() {
    loom::model(|| {
        let d = Arc::new(StealDeque::with_min_capacity(2));
        d.push(0usize);
        d.push(1);
        let d2 = Arc::clone(&d);
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                if let Steal::Success(v) = d2.steal() {
                    got.push(v);
                }
            }
            got
        });
        let mut got = Vec::new();
        while let Some(v) = d.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "items lost or duplicated");
    });
}

/// A steal racing the buffer swap: the owner pushes past capacity (buffer
/// of 2 → grow) while a thief is mid-steal, so the thief may read the
/// retired buffer. The copied window must make both generations agree and
/// no item may be lost, duplicated, or freed under the thief.
#[test]
fn grow_during_steal_loses_nothing() {
    // `grow` only triggers in schedules where the thief hasn't yet taken
    // an item when the third push lands, so assert coverage across the
    // exploration rather than per schedule.
    static GROW_SCHEDULES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    loom::model(|| {
        let d = Arc::new(StealDeque::with_min_capacity(2));
        d.push(0usize);
        d.push(1);
        let d2 = Arc::clone(&d);
        let thief = loom::thread::spawn(move || match d2.steal() {
            Steal::Success(v) => Some(v),
            _ => None,
        });
        d.push(2); // full buffer: triggers grow under the thief's feet
        let mut got = Vec::new();
        while let Some(v) = d.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2], "grow corrupted the live window");
        GROW_SCHEDULES.fetch_add(d.grow_count(), std::sync::atomic::Ordering::Relaxed);
    });
    assert!(
        GROW_SCHEDULES.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "no explored schedule exercised grow"
    );
}

/// The grow counter rides the facade, so the model can check it: a grow
/// that happened-before spawn is visible to the thief, the counter never
/// runs ahead of the grows a schedule actually performed, and the final
/// tally lands exactly on the schedule-dependent set {1, 2}.
#[test]
fn grow_counter_is_coherent_across_threads() {
    loom::model(|| {
        let d = Arc::new(StealDeque::with_min_capacity(2));
        d.push(0usize);
        d.push(1);
        d.push(2); // capacity 2: exactly one grow before the thief exists
        assert_eq!(d.grow_count(), 1);
        let d2 = Arc::clone(&d);
        let thief = loom::thread::spawn(move || {
            let seen = d2.grow_count();
            let _ = d2.steal();
            seen
        });
        d.push(3);
        d.push(4); // second grow (capacity 4) iff the thief stole nothing yet
        let seen = thief.join().unwrap();
        let total = d.grow_count();
        assert!(seen >= 1, "pre-spawn grow invisible to the thief");
        assert!(seen <= total, "thief observed more grows than happened");
        assert!((1..=2).contains(&total), "grow count {total} out of range");
        while d.pop().is_some() {}
    });
}

/// Retired-buffer reclamation: once the thief is done and the owner hits
/// a quiescent point, every superseded buffer generation must be freed —
/// the leak this protocol replaced kept them all until drop.
#[test]
fn retired_buffers_reclaimed_after_thief_quiesces() {
    loom::model(|| {
        let d = Arc::new(StealDeque::with_min_capacity(2));
        d.push(0usize);
        d.push(1);
        let d2 = Arc::clone(&d);
        let thief = loom::thread::spawn(move || {
            let _ = d2.steal();
        });
        d.push(2); // grow
        thief.join().unwrap();
        while d.pop().is_some() {}
        // The empty-pop above ran with no steal in flight: reclamation
        // must have emptied the retired list in every schedule.
        assert_eq!(d.retired_buffers(), 0, "retired buffer survived quiescence");
    });
}
