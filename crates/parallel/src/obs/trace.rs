//! Chrome-trace-event export of the engine's per-worker task timeline.
//!
//! [`crate::engine::TaskSpan`]s (collected when [`ParallelConfig::trace`]
//! is on) become a document loadable by Perfetto / `chrome://tracing` /
//! `about:tracing`: one metadata-named track per worker, one `"X"`
//! (complete) event per executed task, timestamps and durations in
//! microseconds since engine start. The task's snapshot depth (insertions
//! between `I_0` and its resume state) rides along in
//! `args.snapshot_depth`, so steal depth is visible straight from the
//! timeline.
//!
//! [`ParallelConfig::trace`]: crate::engine::ParallelConfig::trace

use super::json::JsonWriter;
use crate::engine::ParallelRunResult;
use std::io;

/// Process id used for every event (one engine run = one process track).
const TRACE_PID: u64 = 1;

/// Renders `result`'s task spans as a Chrome trace-event document
/// (compact JSON, no trailing newline). Workers with no spans still get a
/// named track, so thread counts are visible even for starved workers.
pub fn render_chrome_trace(result: &ParallelRunResult) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();
    w.begin_object();
    w.key("name").string("process_name");
    w.key("ph").string("M");
    w.key("pid").u64(TRACE_PID);
    w.key("tid").u64(0);
    w.key("args").begin_object();
    w.key("name").string("gentrius parallel engine");
    w.end_object();
    w.end_object();
    for (tid, worker) in result.workers.iter().enumerate() {
        w.begin_object();
        w.key("name").string("thread_name");
        w.key("ph").string("M");
        w.key("pid").u64(TRACE_PID);
        w.key("tid").u64(tid as u64);
        w.key("args").begin_object();
        w.key("name").string(&format!("worker-{tid}"));
        w.end_object();
        w.end_object();
        for span in &worker.spans {
            w.begin_object();
            w.key("name").string("task");
            w.key("ph").string("X");
            w.key("pid").u64(TRACE_PID);
            w.key("tid").u64(tid as u64);
            w.key("ts").f64(span.start * 1e6);
            w.key("dur").f64((span.end - span.start).max(0.0) * 1e6);
            w.key("args").begin_object();
            w.key("snapshot_depth").u64(span.snapshot_depth as u64);
            w.end_object();
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Writes the Chrome trace-event document for `result` to `out`, newline
/// terminated.
pub fn write_chrome_trace<W: io::Write>(out: &mut W, result: &ParallelRunResult) -> io::Result<()> {
    let doc = render_chrome_trace(result);
    out.write_all(doc.as_bytes())?;
    out.write_all(b"\n")
}
