//! Minimal hand-rolled JSON emitter and syntax validator.
//!
//! The workspace is dependency-free, so the metrics and trace exporters
//! cannot lean on `serde`. This module provides the two halves they need:
//! a push-style [`JsonWriter`] that produces compact, valid JSON (comma
//! placement and string escaping handled centrally, so exporters cannot
//! emit malformed output), and a recursive-descent [`validate`] checker
//! used by the test suites to assert that exported files actually parse.

use std::fmt::Write as _;

/// Push-style JSON emitter. Values and `key`/value pairs are appended in
/// document order; commas and `:` separators are inserted automatically.
/// The writer is infallible (it builds a `String`); callers stream the
/// result to an `io::Write` in one call.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once it holds a value (so the
    /// next value needs a comma first).
    stack: Vec<bool>,
    /// A key was just written; the next value must not emit a comma.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('[');
        self.stack.push(false);
        self
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push(']');
        self
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.before_value();
        self.write_escaped(k);
        self.buf.push(':');
        self.pending_key = true;
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.before_value();
        self.write_escaped(s);
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a float value (`null` for non-finite values, which bare JSON
    /// cannot represent).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a `null`.
    pub fn null(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push_str("null");
        self
    }

    fn write_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.buf
    }
}

/// Validates that `text` is one complete JSON value (RFC 8259 syntax).
/// Returns the byte offset and a message on the first error.
pub fn validate(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.i))
    }

    fn value(&mut self) -> Result<(), String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            self.err("bad literal")
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1; // '{'
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return self.err("expected ':'");
            }
            self.i += 1;
            self.ws();
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1; // '['
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.b.get(self.i) != Some(&b'"') {
            return self.err("expected '\"'");
        }
        self.i += 1;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !self.b.get(self.i).is_some_and(|h| h.is_ascii_hexdigit()) {
                                    return self.err("bad \\u escape");
                                }
                                self.i += 1;
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                0x00..=0x1f => return self.err("raw control character in string"),
                _ => self.i += 1,
            }
        }
        self.err("unterminated string")
    }

    fn number(&mut self) -> Result<(), String> {
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            if !p.b.get(p.i).is_some_and(|c| c.is_ascii_digit()) {
                return p.err("expected digit");
            }
            while p.b.get(p.i).is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            Ok(())
        };
        // Integer part: one zero, or a nonzero-led run.
        if self.b.get(self.i) == Some(&b'0') {
            self.i += 1;
        } else {
            digits(self)?;
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("he said \"hi\"\n");
        w.key("n").u64(42);
        w.key("x").f64(0.125);
        w.key("inf").f64(f64::INFINITY);
        w.key("ok").bool(true);
        w.key("none").null();
        w.key("list").begin_array();
        w.u64(1).u64(2);
        w.begin_object()
            .key("deep")
            .string("tab\there")
            .end_object();
        w.end_array();
        w.end_object();
        let s = w.finish();
        validate(&s).unwrap();
        assert!(s.contains("\"x\":0.125"), "{s}");
        assert!(s.contains("\"inf\":null"), "{s}");
        assert!(s.contains("\\\"hi\\\""), "{s}");
    }

    #[test]
    fn validator_accepts_rfc_cases() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "0",
            "\"\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            "  [ 1 , 2 ]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
            "nul",
            "\"bad \\q escape\"",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut w = JsonWriter::new();
        w.string("\u{1}bell");
        let s = w.finish();
        assert_eq!(s, "\"\\u0001bell\"");
        validate(&s).unwrap();
    }
}
