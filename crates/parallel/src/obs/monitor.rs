//! The run monitor: a supervisor thread that gives the engine a heartbeat.
//!
//! §III-B's batched counters evaluate the stopping rules only when a
//! worker flushes. For the two count limits that is exactly the paper's
//! documented behaviour (overshoot bounded by one batch per thread), but
//! for the wall-clock rule it was a real bug: a run whose workers are all
//! parked on the idle condvar, or grinding below the flush thresholds,
//! re-examines the clock *never*, so `max_time` could be overshot without
//! bound. The monitor makes the fix structural instead of sprinkling clock
//! checks through the hot paths: the engine owns one lightweight thread
//! that ticks every [`MonitorConfig::tick`], calls
//! [`enforce_time_limit`] (raise the stop flag with
//! [`StopCause::TimeLimit`], then shut the pool down so parked workers
//! wake), and samples per-worker progress into a bounded ring of
//! [`Heartbeat`] snapshots — the raw series behind the `--metrics-json`
//! export and the scaling-experiment timelines.
//!
//! Concurrency: the monitor's own state (quit flag, tick count, heartbeat
//! ring) lives behind one facade `Mutex` + `Condvar`, so the whole
//! protocol is visible to the loom model. The *enforcement* action is a
//! pure function over [`GlobalCounters`] + [`TaskPool`]
//! ([`enforce_time_limit`]), which `tests/loom_monitor.rs` races against
//! parked and mid-flush workers.

use crate::counters::GlobalCounters;
use crate::pool::{SchedulerCounts, TaskPool};
use crate::sync::{Condvar, Mutex};
use gentrius_core::config::StopCause;
use gentrius_core::stats::RunStats;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Knobs for the run monitor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Supervision period: how often the monitor enforces `max_time` and
    /// samples a heartbeat.
    pub tick: Duration,
    /// Ring capacity for heartbeat snapshots; once full, the oldest
    /// sample is dropped for each new one (the drop count is reported).
    pub heartbeat_capacity: usize,
    /// Checkpoint cadence: once this much wall-clock time has elapsed
    /// since engine start, the monitor requests a cooperative pause
    /// ([`TaskPool::request_pause`]) so the epoch ends with its frontier
    /// intact and the caller can write a `.standckpt`. `None` disables
    /// the trigger (the epoch runs to completion or a stopping rule).
    pub checkpoint_every: Option<Duration>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            tick: Duration::from_millis(50),
            heartbeat_capacity: 512,
            checkpoint_every: None,
        }
    }
}

/// One sampled snapshot of run progress.
#[derive(Clone, Debug, PartialEq)]
pub struct Heartbeat {
    /// Seconds since engine start at the moment of sampling.
    pub elapsed_secs: f64,
    /// Global counter snapshot (flushed totals only — per-thread pending
    /// batches are invisible until they flush, as in the paper).
    pub stats: RunStats,
    /// Per-worker scheduler activity, indexed by worker id.
    pub per_worker: Vec<SchedulerCounts>,
}

/// What the monitor observed over one engine run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MonitorReport {
    /// Supervision ticks performed (0 when the monitor was disabled).
    pub ticks: u64,
    /// True if the run was stopped by the wall-clock rule
    /// ([`StopCause::TimeLimit`]), whether the monitor or a counter flush
    /// raised it first.
    pub time_limit_raised: bool,
    /// Heartbeats evicted from the ring because it was full.
    pub dropped_heartbeats: u64,
    /// The retained heartbeat series, oldest first. The final entry is
    /// sampled at engine shutdown, so a completed run always carries its
    /// end state even if every periodic sample was evicted.
    pub heartbeats: Vec<Heartbeat>,
}

/// Mutable monitor state, guarded by [`MonitorShared::state`].
struct MonitorState {
    quit: bool,
    ticks: u64,
    dropped: u64,
    heartbeats: VecDeque<Heartbeat>,
    capacity: usize,
}

/// Shared handle between the engine and its monitor thread. Created
/// before the worker scope opens; [`MonitorShared::finish`] must be called
/// (on every engine path) before the scope closes, or the scope would
/// wait on a monitor that never quits.
pub struct MonitorShared {
    state: Mutex<MonitorState>,
    cv: Condvar,
    tick: Duration,
}

impl MonitorShared {
    /// Fresh shared state for one run.
    pub fn new(cfg: &MonitorConfig) -> Self {
        MonitorShared {
            state: Mutex::new(MonitorState {
                quit: false,
                ticks: 0,
                dropped: 0,
                heartbeats: VecDeque::new(),
                capacity: cfg.heartbeat_capacity.max(1),
            }),
            cv: Condvar::new(),
            tick: cfg.tick,
        }
    }

    /// Signals the monitor thread to exit, takes a final heartbeat, and
    /// returns everything observed. Idempotent in effect; the monitor
    /// wakes immediately (no residual tick latency on engine shutdown).
    pub fn finish(
        &self,
        global: &GlobalCounters,
        pool: &TaskPool,
        started: Instant,
    ) -> MonitorReport {
        let mut st = self.state.lock().unwrap();
        st.quit = true;
        push_heartbeat(&mut st, global, pool, started);
        let report = MonitorReport {
            ticks: st.ticks,
            time_limit_raised: global.stop_cause() == Some(StopCause::TimeLimit),
            dropped_heartbeats: st.dropped,
            heartbeats: st.heartbeats.iter().cloned().collect(),
        };
        drop(st);
        self.cv.notify_all();
        report
    }

    /// Signals the monitor thread to exit without sampling or reporting.
    /// The engine's unwind guard uses this so a panicking worker still
    /// propagates (a scope join on a never-quitting monitor would hang
    /// the unwind instead).
    pub fn quit(&self) {
        let mut st = self.state.lock().unwrap();
        st.quit = true;
        drop(st);
        self.cv.notify_all();
    }
}

fn push_heartbeat(
    st: &mut MonitorState,
    global: &GlobalCounters,
    pool: &TaskPool,
    started: Instant,
) {
    if st.heartbeats.len() >= st.capacity {
        st.heartbeats.pop_front();
        st.dropped += 1;
    }
    st.heartbeats.push_back(Heartbeat {
        elapsed_secs: started.elapsed().as_secs_f64(),
        stats: global.snapshot(),
        per_worker: pool.scheduler_counts(),
    });
}

/// The bugfix, as a pure action: if the run's wall-clock budget is
/// exhausted, raise the stop flag with [`StopCause::TimeLimit`] (the
/// first-writer-wins CAS keeps any earlier cause) and shut the pool down
/// so parked workers wake instead of sleeping through the stop. Safe to
/// call repeatedly; both halves are idempotent. Returns whether the limit
/// was exceeded (i.e. whether enforcement ran).
pub fn enforce_time_limit(global: &GlobalCounters, pool: &TaskPool) -> bool {
    if !global.time_limit_exceeded() {
        return false;
    }
    global.raise_stop(StopCause::TimeLimit);
    pool.shutdown();
    true
}

/// The adaptive-granularity controller, as a pure action over one
/// heartbeat interval: given the previous tick's total steal/execute
/// counts, sample the new totals and open or close the pool's split gate.
///
/// Heuristic: the pool is *saturated* when the interval saw real task
/// throughput (at least one completed task per worker) but steals claimed
/// ≤ 1/4 of it — everyone had local work, so publishing more stealable
/// frames (each costing a state snapshot) is pure overhead. Any other
/// interval — steal-heavy, or too quiet to judge — opens the gate, and a
/// parked worker overrides a closed gate instantly via
/// [`crate::WorkerHandle::split_allowed`]. Returns the new gate state.
pub fn adapt_split_gate(pool: &TaskPool, prev_steals: &mut u64, prev_executed: &mut u64) -> bool {
    let mut steals = 0u64;
    let mut executed = 0u64;
    for c in pool.scheduler_counts() {
        steals += c.steals;
        executed += c.executed;
    }
    let d_steals = steals.saturating_sub(*prev_steals);
    let d_executed = executed.saturating_sub(*prev_executed);
    *prev_steals = steals;
    *prev_executed = executed;
    let saturated = d_executed >= pool.workers() as u64 && d_steals * 4 <= d_executed;
    pool.set_split_gate(!saturated);
    !saturated
}

/// Spawns the monitor thread into the engine's worker scope. The thread
/// runs until [`MonitorShared::finish`] is called: each tick it enforces
/// the wall-clock rule, retunes the adaptive split gate and samples a
/// heartbeat, then sleeps on the shared condvar for up to one tick (so
/// shutdown wakes it instantly).
pub fn spawn_monitor<'scope, 'env: 'scope>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    shared: &'env MonitorShared,
    global: &'env GlobalCounters,
    pool: &'env TaskPool,
    started: Instant,
    checkpoint_every: Option<Duration>,
) {
    scope.spawn(move || {
        let mut prev_steals = 0u64;
        let mut prev_executed = 0u64;
        let mut pause_raised = false;
        let mut st = shared.state.lock().unwrap();
        loop {
            if st.quit {
                // `finish` already took the final sample.
                break;
            }
            st.ticks += 1;
            enforce_time_limit(global, pool);
            // The checkpoint trigger: once the epoch's wall-clock budget is
            // spent, quiesce the workers cooperatively. Raised at most once
            // per epoch — after the pause the pool is shutting down anyway.
            if let Some(every) = checkpoint_every {
                if !pause_raised && started.elapsed() >= every {
                    pause_raised = true;
                    pool.request_pause();
                }
            }
            adapt_split_gate(pool, &mut prev_steals, &mut prev_executed);
            push_heartbeat(&mut st, global, pool, started);
            let (guard, _timeout) = shared.cv.wait_timeout(st, shared.tick).unwrap();
            st = guard;
        }
    });
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use gentrius_core::config::StoppingRules;

    fn time_rules(max: Duration) -> StoppingRules {
        StoppingRules {
            max_stand_trees: None,
            max_intermediate_states: None,
            max_time: Some(max),
        }
    }

    #[test]
    fn enforce_is_inert_within_budget() {
        let g = GlobalCounters::new(time_rules(Duration::from_secs(3600)));
        let p = TaskPool::new(2, 4);
        assert!(!enforce_time_limit(&g, &p));
        assert!(!g.stopped());
        assert!(!p.is_done());
    }

    #[test]
    fn enforce_raises_time_limit_and_shuts_down_the_pool() {
        let g = GlobalCounters::new(time_rules(Duration::ZERO));
        let p = TaskPool::new(2, 4);
        assert!(enforce_time_limit(&g, &p));
        assert!(g.stopped());
        assert_eq!(g.stop_cause(), Some(StopCause::TimeLimit));
        assert!(p.is_done());
        // Idempotent on repeat.
        assert!(enforce_time_limit(&g, &p));
        assert_eq!(g.stop_cause(), Some(StopCause::TimeLimit));
    }

    #[test]
    fn enforce_keeps_an_earlier_cause() {
        let g = GlobalCounters::new(time_rules(Duration::ZERO));
        let p = TaskPool::new(1, 1);
        g.raise_stop(StopCause::StandTreeLimit);
        assert!(enforce_time_limit(&g, &p));
        assert_eq!(g.stop_cause(), Some(StopCause::StandTreeLimit));
        assert!(p.is_done(), "parked workers must still be released");
    }

    #[test]
    fn adaptive_controller_tracks_the_steal_to_execute_ratio() {
        use crate::task::Task;
        use phylo::taxa::TaxonId;

        let mut p = TaskPool::new(2, 8);
        p.set_adaptive(true);
        let (mut prev_s, mut prev_e) = (0u64, 0u64);
        // Quiet interval: nothing executed — the gate stays open.
        assert!(adapt_split_gate(&p, &mut prev_s, &mut prev_e));
        // Steal-free throughput: worker 0 runs 4 of its own tasks.
        {
            let w = p.worker(0);
            for i in 0..4 {
                w.try_push(Task::probe(TaxonId(0), vec![phylo::tree::EdgeId(i)]))
                    .unwrap();
            }
            for _ in 0..4 {
                let _ = w.next_task().unwrap();
                w.task_done();
            }
        }
        assert!(
            !adapt_split_gate(&p, &mut prev_s, &mut prev_e),
            "saturated interval must close the gate"
        );
        assert!(!p.worker(0).split_allowed());
        // The next interval shows no progress: the gate reopens.
        assert!(adapt_split_gate(&p, &mut prev_s, &mut prev_e));
        assert!(p.worker(0).split_allowed());
    }

    #[test]
    fn heartbeat_ring_is_bounded_and_reports_drops() {
        let g = GlobalCounters::new(StoppingRules::unlimited());
        let p = TaskPool::new(2, 4);
        let shared = MonitorShared::new(&MonitorConfig {
            tick: Duration::from_millis(1),
            heartbeat_capacity: 4,
            checkpoint_every: None,
        });
        let t0 = Instant::now();
        {
            let mut st = shared.state.lock().unwrap();
            for _ in 0..10 {
                push_heartbeat(&mut st, &g, &p, t0);
            }
        }
        let report = shared.finish(&g, &p, t0);
        assert_eq!(report.heartbeats.len(), 4);
        assert_eq!(report.dropped_heartbeats, 7); // 10 + final, cap 4
        for pair in report.heartbeats.windows(2) {
            assert!(pair[0].elapsed_secs <= pair[1].elapsed_secs);
        }
        assert_eq!(report.heartbeats[0].per_worker.len(), 2);
    }

    #[test]
    fn monitor_thread_stops_a_parked_pool_and_quits_on_finish() {
        let g = GlobalCounters::new(time_rules(Duration::from_millis(5)));
        let p = TaskPool::new(2, 4);
        p.preregister_active(1); // keeps the parked worker from self-draining
        let shared = MonitorShared::new(&MonitorConfig {
            tick: Duration::from_millis(2),
            heartbeat_capacity: 64,
            checkpoint_every: None,
        });
        let t0 = Instant::now();
        let report = std::thread::scope(|scope| {
            spawn_monitor(scope, &shared, &g, &p, t0, None);
            // A parked worker never flushes counters; only the monitor can
            // release it once the 5 ms budget runs out.
            let got = p.worker(1).next_task();
            assert!(got.is_none());
            shared.finish(&g, &p, t0)
        });
        assert_eq!(g.stop_cause(), Some(StopCause::TimeLimit));
        assert!(report.time_limit_raised);
        assert!(report.ticks >= 1);
        assert!(!report.heartbeats.is_empty());
    }
}
