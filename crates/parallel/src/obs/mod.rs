//! Observability for the parallel engine: the run monitor and the two
//! JSON exporters.
//!
//! Three pieces, layered bottom-up:
//!
//! * [`json`] — a dependency-free push-style JSON emitter plus a
//!   recursive-descent validator (the workspace bans external crates, so
//!   `serde` is out).
//! * [`monitor`] — the engine's supervisor thread. This is where the
//!   wall-clock stopping rule is actually enforced: counter flushes alone
//!   cannot bound `max_time` overshoot (parked or starved workers never
//!   flush), so the monitor ticks every ~50 ms, raises
//!   `StopCause::TimeLimit` when the budget runs out, wakes parked
//!   workers, and samples per-worker progress into a heartbeat ring.
//! * [`metrics`] / [`trace`] — exporters over [`ParallelRunResult`]: a
//!   schema-versioned run-metrics document (`--metrics-json`) and a
//!   Chrome-trace-event timeline of the per-worker task spans
//!   (`--trace-json`). Both write to an `io::Write` handed in by the
//!   caller; nothing in this module prints.
//!
//! [`ParallelRunResult`]: crate::engine::ParallelRunResult

pub mod json;
pub mod metrics;
pub mod monitor;
pub mod trace;

pub use metrics::{render_run_metrics, write_run_metrics, METRICS_SCHEMA, METRICS_VERSION};
pub use monitor::{enforce_time_limit, Heartbeat, MonitorConfig, MonitorReport};
pub use trace::{render_chrome_trace, write_chrome_trace};
