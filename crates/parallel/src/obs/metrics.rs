//! Schema-versioned `RunMetrics` JSON export of a [`ParallelRunResult`].
//!
//! One engine run serializes to a single self-describing JSON document:
//! the `schema`/`version` header first, then totals, stopping outcome,
//! flush thresholds, aggregate and per-worker scheduler diagnostics, and
//! the monitor's heartbeat series. The format is covered by a golden-file
//! test (`tests/metrics_golden.rs`) — any field rename, reorder or type
//! change is a schema break and must bump [`METRICS_VERSION`] along with
//! the fixture.
//!
//! The exporter writes to any `io::Write` (the workspace `no-stray-io`
//! lint bars library code from printing); the CLI surfaces it as
//! `gentrius stand --metrics-json <path>` and the bench smoke target
//! seeds the `BENCH_*.json` perf trajectory with it.

use super::json::JsonWriter;
use super::monitor::Heartbeat;
use crate::counters::FlushThresholds;
use crate::engine::ParallelRunResult;
use crate::pool::SchedulerCounts;
use gentrius_core::config::StopCause;
use gentrius_core::stats::RunStats;
use std::io;

/// Schema identifier carried in every export.
pub const METRICS_SCHEMA: &str = "gentrius-run-metrics";

/// Current schema version. Bump on any breaking change to the document
/// layout and regenerate the golden fixture.
///
/// v2: scheduler objects (aggregate and per-worker) gained `executed`
/// (tasks completed — the denominator of the adaptive-granularity
/// controller's steal-to-execute ratio).
pub const METRICS_VERSION: u64 = 2;

fn stop_cause_str(stop: Option<StopCause>) -> Option<&'static str> {
    match stop {
        None => None,
        Some(StopCause::StandTreeLimit) => Some("stand-tree-limit"),
        Some(StopCause::StateLimit) => Some("state-limit"),
        Some(StopCause::TimeLimit) => Some("time-limit"),
    }
}

fn stats_object(w: &mut JsonWriter, s: &RunStats) {
    w.begin_object();
    w.key("stand_trees").u64(s.stand_trees);
    w.key("intermediate_states").u64(s.intermediate_states);
    w.key("dead_ends").u64(s.dead_ends);
    w.end_object();
}

fn sched_object(w: &mut JsonWriter, s: &SchedulerCounts) {
    w.begin_object();
    w.key("steals").u64(s.steals);
    w.key("failed_steals").u64(s.failed_steals);
    w.key("parks").u64(s.parks);
    w.key("splits").u64(s.splits);
    w.key("executed").u64(s.executed);
    w.end_object();
}

fn heartbeat_object(w: &mut JsonWriter, h: &Heartbeat) {
    w.begin_object();
    w.key("elapsed_secs").f64(h.elapsed_secs);
    w.key("stats");
    stats_object(w, &h.stats);
    w.key("per_worker").begin_array();
    for s in &h.per_worker {
        sched_object(w, s);
    }
    w.end_array();
    w.end_object();
}

/// Renders one run as a schema-v1 metrics document (compact JSON, no
/// trailing newline).
pub fn render_run_metrics(result: &ParallelRunResult, flush: &FlushThresholds) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string(METRICS_SCHEMA);
    w.key("version").u64(METRICS_VERSION);
    w.key("threads").u64(result.threads as u64);
    w.key("elapsed_secs").f64(result.elapsed.as_secs_f64());
    match stop_cause_str(result.stop) {
        Some(c) => w.key("stop_cause").string(c),
        None => w.key("stop_cause").null(),
    };
    w.key("complete").bool(result.complete());
    w.key("initial_tree").u64(result.initial_tree as u64);
    w.key("flush_thresholds").begin_object();
    w.key("stand_trees").u64(flush.stand_trees);
    w.key("intermediate_states").u64(flush.intermediate_states);
    w.key("dead_ends").u64(flush.dead_ends);
    w.end_object();
    w.key("stats");
    stats_object(&mut w, &result.stats);
    w.key("prefix");
    stats_object(&mut w, &result.prefix);
    w.key("stolen_tasks").u64(result.stolen_tasks as u64);
    w.key("scheduler").begin_object();
    w.key("steals").u64(result.scheduler.steals);
    w.key("failed_steals").u64(result.scheduler.failed_steals);
    w.key("parks").u64(result.scheduler.parks);
    w.key("splits").u64(result.scheduler.splits);
    w.key("executed").u64(result.scheduler.executed);
    w.key("injected").u64(result.scheduler.injected);
    w.key("deque_grows").u64(result.scheduler.deque_grows);
    w.end_object();
    w.key("workers").begin_array();
    for worker in &result.workers {
        w.begin_object();
        w.key("tasks_executed").u64(worker.tasks_executed as u64);
        w.key("stats");
        stats_object(&mut w, &worker.stats);
        w.key("sched");
        sched_object(&mut w, &worker.sched);
        w.key("spans").u64(worker.spans.len() as u64);
        w.end_object();
    }
    w.end_array();
    w.key("monitor").begin_object();
    w.key("ticks").u64(result.monitor.ticks);
    w.key("time_limit_raised")
        .bool(result.monitor.time_limit_raised);
    w.key("dropped_heartbeats")
        .u64(result.monitor.dropped_heartbeats);
    w.key("heartbeats").begin_array();
    for h in &result.monitor.heartbeats {
        heartbeat_object(&mut w, h);
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

/// Writes the schema-v1 metrics document for `result` to `out`, newline
/// terminated.
pub fn write_run_metrics<W: io::Write>(
    out: &mut W,
    result: &ParallelRunResult,
    flush: &FlushThresholds,
) -> io::Result<()> {
    let doc = render_run_metrics(result, flush);
    out.write_all(doc.as_bytes())?;
    out.write_all(b"\n")
}
