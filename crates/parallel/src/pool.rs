//! The thread-pool coordination object: a two-level work-stealing
//! scheduler with per-worker Chase–Lev deques, a small global injector for
//! the initial split, and condvar-based idle parking with termination
//! detection (§III-A/B).
//!
//! The paper uses one central bounded queue guarded by OpenMP locks plus a
//! `std::condition_variable` for idle threads. This pool keeps the paper's
//! *semantics* — bounded capacity gating task creation ("split only when
//! there is room"), idle parking, drained/stopped termination — but
//! distributes the queue: each worker owns a lock-free
//! [`StealDeque`](crate::deque::StealDeque) it pushes and pops at the LIFO
//! end, while idle workers steal from randomly chosen victims at the FIFO
//! end. The capacity rule becomes a *per-deque length hint*: a worker may
//! only submit a split while its own deque holds fewer than `capacity`
//! tasks, so the §III-A ablation knob keeps its meaning. The mutex +
//! condvar survive only for what they are good at: parking idle workers
//! and announcing termination.
//!
//! Termination detection is a single in-flight task count: every task is
//! counted before it becomes visible (push, inject, or
//! [`TaskPool::preregister_active`] for directly handed chunks) and
//! uncounted in [`WorkerHandle::task_done`]; the pool is drained exactly
//! when the count hits zero. Parked workers are woken by pushes (an
//! `idlers` counter elides the notify when nobody sleeps) and by the
//! drain or an external [`TaskPool::shutdown`].

use crate::deque::{Steal, StealDeque};
use crate::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};
use crate::task::Task;
use std::collections::VecDeque;

/// Per-worker scheduler statistics (steal/park/split activity), collected
/// lock-free and snapshot via [`TaskPool::scheduler_counts`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerCounts {
    /// Tasks this worker took from another worker's deque.
    pub steals: u64,
    /// Steal attempts (full victim sweeps) that came back empty-handed.
    pub failed_steals: u64,
    /// Times this worker parked on the condvar.
    pub parks: u64,
    /// Tasks this worker split off and pushed onto its own deque.
    pub splits: u64,
    /// Tasks this worker finished executing ([`WorkerHandle::task_done`]).
    pub executed: u64,
}

impl SchedulerCounts {
    /// Adds another worker's counts into `self`.
    pub fn merge(&mut self, other: &SchedulerCounts) {
        self.steals += other.steals;
        self.failed_steals += other.failed_steals;
        self.parks += other.parks;
        self.splits += other.splits;
        self.executed += other.executed;
    }
}

/// Lock-free cells behind [`SchedulerCounts`].
#[derive(Default)]
struct StatCells {
    steals: AtomicU64,
    failed_steals: AtomicU64,
    parks: AtomicU64,
    splits: AtomicU64,
    executed: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> SchedulerCounts {
        // ordering: Relaxed — monotonic diagnostic counters; a snapshot is
        // a point-in-time tally, no reader derives synchronization from it.
        SchedulerCounts {
            steals: self.steals.load(Ordering::Relaxed),
            failed_steals: self.failed_steals.load(Ordering::Relaxed),
            // ordering: Relaxed — as above.
            parks: self.parks.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
        }
    }
}

/// Shared pool: per-worker steal deques + global injector + idle-thread
/// parking + termination. See the module docs for the design.
pub struct TaskPool {
    /// One Chase–Lev deque per worker, indexed by worker id.
    deques: Vec<StealDeque<Task>>,
    /// Runtime enforcement of the deque ownership contract: each worker id
    /// may be checked out (as a [`WorkerHandle`]) at most once at a time.
    checked_out: Vec<AtomicBool>,
    /// Per-worker xorshift state for randomized victim selection.
    victim_rng: Vec<AtomicU64>,
    /// Per-worker scheduler statistics.
    stats: Vec<StatCells>,
    /// Global injector: overflow/startup work any worker may take. Holds
    /// only the initial-split chunks in the engine, so a plain locked
    /// VecDeque is plenty.
    injector: Mutex<VecDeque<Task>>,
    /// Lock-free mirror of the injector length.
    injector_len: AtomicUsize,
    /// Tasks made visible but not yet completed. Zero ⇒ drained.
    inflight: AtomicUsize,
    /// Terminal state: drained, or externally stopped.
    done: AtomicBool,
    /// Parking lot for idle workers (the mutex guards nothing but the wait).
    park: Mutex<()>,
    cv: Condvar,
    /// Workers currently parked or about to park; pushes skip the notify
    /// syscall while this is zero.
    idlers: AtomicUsize,
    /// Per-deque capacity: the §III-A "split only when there is room" gate.
    capacity: usize,
    /// Tasks ever pushed through worker deques (excludes injected chunks).
    submitted: AtomicUsize,
    /// Tasks ever placed in the injector.
    injected: AtomicUsize,
    /// Adaptive-granularity gate: while closed, workers skip publishing
    /// stealable frames (the pool is saturated). Opened/closed by the run
    /// monitor from the observed steal-to-execute ratio; an `idlers > 0`
    /// override in [`WorkerHandle::split_allowed`] keeps starving thieves
    /// fed between monitor ticks.
    split_gate: AtomicBool,
    /// Whether the adaptive gate is consulted at all. Plain bool: set once
    /// via [`TaskPool::set_adaptive`] before the pool is shared.
    adaptive: bool,
    /// Cooperative pause request (checkpoint quiesce). Distinguishes "stop
    /// to checkpoint, the frontier is live" from a plain [`TaskPool::shutdown`]
    /// ("stop, the frontier is garbage"): workers that observe a raised
    /// pause drain their in-progress explorer into task descriptors instead
    /// of dropping it.
    pause: AtomicBool,
}

/// Initial per-deque ring-buffer capacity. Deliberately small and
/// *independent* of the capacity gate: buffers double on demand, so the
/// Chase–Lev `grow` path (buffer swap + retire/reclaim) is live in
/// production whenever `capacity` exceeds this, not dead code sized away
/// at construction. The churn profile in `tests/engine_differential.rs`
/// and the loom grow models rely on that.
const INITIAL_DEQUE_BUF: usize = 8;

/// How many randomized victim sweeps a worker makes before giving up on
/// stealing (each sweep covers every other worker once, starting from a
/// random victim); a failed sweep that saw contention (`Retry`) is repeated.
const STEAL_ROUNDS: usize = 2;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TaskPool {
    /// An empty pool for `workers` worker threads with the given per-deque
    /// capacity hint. Victim selection is seeded from `workers`/`capacity`;
    /// use [`TaskPool::with_seed`] to vary it.
    pub fn new(workers: usize, capacity: usize) -> Self {
        Self::with_seed(workers, capacity, 0)
    }

    /// Like [`TaskPool::new`] with an explicit seed for the randomized
    /// victim selection (tests and the simulator use this to explore
    /// different steal orders).
    pub fn with_seed(workers: usize, capacity: usize, seed: u64) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(capacity >= 1, "capacity must be positive");
        TaskPool {
            deques: (0..workers)
                .map(|_| StealDeque::with_min_capacity(INITIAL_DEQUE_BUF.min(capacity)))
                .collect(),
            checked_out: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            victim_rng: (0..workers)
                .map(|w| AtomicU64::new(splitmix64(seed ^ (w as u64 + 1)) | 1))
                .collect(),
            stats: (0..workers).map(|_| StatCells::default()).collect(),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            park: Mutex::new(()),
            cv: Condvar::new(),
            idlers: AtomicUsize::new(0),
            capacity,
            submitted: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
            split_gate: AtomicBool::new(true),
            adaptive: false,
            pause: AtomicBool::new(false),
        }
    }

    /// Turns the adaptive-granularity gate on or off. Must be called
    /// before the pool is shared across threads (takes `&mut self`).
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
        // Entering adaptive mode always starts with the gate open — the
        // monitor has observed nothing yet, so the static §III-A gates
        // alone should govern until the first heartbeat delta.
        // ordering: Relaxed — advisory throttling hint (see set_split_gate).
        self.split_gate.store(true, Ordering::Relaxed);
    }

    /// Opens or closes the adaptive split gate (the run monitor drives
    /// this from heartbeat deltas). A no-op for workers unless the pool
    /// was configured with [`TaskPool::set_adaptive`].
    pub fn set_split_gate(&self, open: bool) {
        // ordering: Relaxed — the gate is an advisory throttling hint; a
        // worker acting on a stale value only publishes (or skips) one
        // extra task, never affects correctness or termination.
        self.split_gate.store(open, Ordering::Relaxed);
    }

    /// Number of worker slots (deques).
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// The per-deque capacity hint.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once the pool has terminated (drained or shut down).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Pre-counts `n` tasks that are handed to workers directly, bypassing
    /// both the deques and the injector. Without this a chunk-less worker
    /// could observe "nothing in flight" and declare the pool drained
    /// before the handed-off work even starts (the classic premature-
    /// termination race; see `scheduler_interleave.rs` for the regression
    /// test). Each handed task must be balanced by a
    /// [`WorkerHandle::task_done`].
    pub fn preregister_active(&self, n: usize) {
        // ordering: SeqCst — all `inflight` traffic shares one total order
        // with the parker's drain check; a weaker count could let a parked
        // worker read zero while a handed-off chunk is still running.
        self.inflight.fetch_add(n, Ordering::SeqCst);
    }

    /// Puts a task into the global injector (the engine routes the
    /// initial-split chunks through here). Always succeeds; the injector
    /// is not capacity-gated.
    pub fn inject(&self, task: Task) {
        // ordering: SeqCst — the task is counted in flight *before* it is
        // visible, in the same total order as the drain check (see
        // `preregister_active`); `injector_len` mirrors are SeqCst so the
        // parker's work re-check cannot miss a just-injected task.
        self.inflight.fetch_add(1, Ordering::SeqCst);
        {
            let mut q = self.injector.lock().unwrap();
            q.push_back(task);
            // ordering: SeqCst — mirror store; see above.
            self.injector_len.store(q.len(), Ordering::SeqCst);
        }
        // ordering: Relaxed — monotonic diagnostic tally only.
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.wake_one();
    }

    /// Checks out the deque owner handle for worker `wid`.
    ///
    /// Panics if `wid` is out of range or already checked out — the
    /// Chase–Lev owner end tolerates exactly one owner, so this is the
    /// runtime fence behind the deque's safety contract.
    pub fn worker(&self, wid: usize) -> WorkerHandle<'_> {
        assert!(wid < self.deques.len(), "worker id {wid} out of range");
        assert!(
            !self.checked_out[wid].swap(true, Ordering::AcqRel),
            "worker {wid} already checked out"
        );
        WorkerHandle { pool: self, wid }
    }

    /// External stop (stopping rule fired): wakes every parked thread and
    /// prevents further pops and pushes.
    pub fn shutdown(&self) {
        self.done.store(true, Ordering::Release);
        let _guard = self.park.lock().unwrap();
        self.cv.notify_all();
    }

    /// Requests a checkpoint pause: raises the pause flag, then shuts the
    /// pool down through the ordinary stop machinery. Workers observing
    /// the stop consult [`TaskPool::pause_requested`] to decide whether
    /// their in-progress frontier is worth draining.
    pub fn request_pause(&self) {
        // ordering: Release — published before the `done` store in
        // `shutdown()`, pairing with the Acquire loads in `is_done` /
        // `pause_requested`: any worker that exits because it saw the
        // shutdown is guaranteed to also see the pause flag.
        self.pause.store(true, Ordering::Release);
        self.shutdown();
    }

    /// True once [`TaskPool::request_pause`] has been called.
    pub fn pause_requested(&self) -> bool {
        // ordering: Acquire — pairs with the Release store in
        // `request_pause`; see there.
        self.pause.load(Ordering::Acquire)
    }

    /// Drains every task still queued (injector + all deques) after the
    /// worker threads have exited. Quiescence is the caller's contract:
    /// this is only sound once the workers are joined, because the deque
    /// steal end is then free of races and the drained set is exactly the
    /// untouched remainder. Used by the checkpoint path to turn queued
    /// work into durable descriptors.
    pub fn drain_tasks(&self) -> Vec<Task> {
        let mut out = Vec::new();
        {
            let mut q = self.injector.lock().unwrap();
            out.extend(q.drain(..));
            // ordering: SeqCst — keep the lock-free mirror honest (see
            // `inject`), in case diagnostics read it after the drain.
            self.injector_len.store(0, Ordering::SeqCst);
        }
        for d in &self.deques {
            loop {
                match d.steal() {
                    Steal::Success(t) => out.push(t),
                    // Retry is only reachable under owner/thief races;
                    // post-join there are none, but loop anyway so the
                    // contract does not depend on that reasoning.
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        out
    }

    /// Total tasks ever submitted through worker deques (excludes the
    /// injected initial chunks).
    pub fn total_submitted(&self) -> usize {
        // ordering: Relaxed — diagnostic tally; reported after the run,
        // when the joins have already ordered every increment.
        self.submitted.load(Ordering::Relaxed)
    }

    /// Total tasks ever placed in the global injector.
    pub fn total_injected(&self) -> usize {
        // ordering: Relaxed — same as `total_submitted`.
        self.injected.load(Ordering::Relaxed)
    }

    /// Per-worker scheduler statistics, indexed by worker id.
    pub fn scheduler_counts(&self) -> Vec<SchedulerCounts> {
        self.stats.iter().map(StatCells::snapshot).collect()
    }

    /// Total deque ring-buffer doublings across all workers (diagnostic;
    /// the churn stress profile asserts this is non-zero).
    pub fn total_deque_grows(&self) -> u64 {
        self.deques.iter().map(StealDeque::grow_count).sum()
    }

    /// Wakes one parked worker, eliding the syscall when nobody is parked.
    /// Callers must have published their work (deque push or injector
    /// store) *before* this; the SeqCst fence pairs with the parker's
    /// idlers increment so either we see the idler or it sees our work.
    fn wake_one(&self) {
        // ordering: SeqCst — the fence orders the caller's work publication
        // before the idlers load, pairing with the parker's SeqCst idlers
        // increment: either we see the idler (and notify) or the idler's
        // re-check sees our work. Anything weaker reopens the lost-wakeup.
        fence(Ordering::SeqCst);
        if self.idlers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().unwrap();
            self.cv.notify_one();
        }
    }

    /// Next pseudo-random value for worker `wid`'s victim selection
    /// (xorshift64; only `wid`'s own thread touches its cell, the atomic
    /// is for shared-struct plumbing).
    fn next_rand(&self, wid: usize) -> u64 {
        // ordering: Relaxed — the cell is only ever touched by `wid`'s own
        // thread; the atomic exists for shared-struct plumbing, not sync.
        let mut x = self.victim_rng[wid].load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // ordering: Relaxed — thread-private cell; see above.
        self.victim_rng[wid].store(x, Ordering::Relaxed);
        x
    }

    /// Any stealable or injected work visible right now? (Approximate —
    /// exact when quiescent, which is when the parker needs it.)
    fn any_work_visible(&self) -> bool {
        // ordering: SeqCst — the parker's re-check must totally order with
        // the pusher's publish + fence in `wake_one` (lost-wakeup pairing).
        self.injector_len.load(Ordering::SeqCst) > 0 || self.deques.iter().any(|d| !d.is_empty())
    }

    fn pop_injected(&self) -> Option<Task> {
        // ordering: SeqCst — both mirror accesses pair with the stores in
        // `inject`, keeping the lock-elision pre-check sound (a stale zero
        // here would only delay, not lose, a task — but the parker's drain
        // logic also reads this mirror, and that one must not lag).
        if self.injector_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut q = self.injector.lock().unwrap();
        let t = q.pop_front();
        // ordering: SeqCst — mirror store; see above.
        self.injector_len.store(q.len(), Ordering::SeqCst);
        t
    }

    /// One randomized steal pass for `wid`: up to [`STEAL_ROUNDS`] sweeps
    /// over all victims, each starting at a random one; a sweep that only
    /// lost CAS races (`Retry`) is retried.
    fn try_steal(&self, wid: usize) -> Option<Task> {
        let n = self.deques.len();
        if n <= 1 {
            return None;
        }
        for _ in 0..STEAL_ROUNDS {
            let start = (self.next_rand(wid) % n as u64) as usize;
            let mut saw_retry = false;
            for k in 0..n {
                let v = (start + k) % n;
                if v == wid {
                    continue;
                }
                match self.deques[v].steal() {
                    Steal::Success(t) => {
                        // ordering: Relaxed — diagnostic tally only.
                        self.stats[wid].steals.fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                    Steal::Retry => {
                        // Lost a race; move on and revisit this victim on
                        // the next sweep.
                        saw_retry = true;
                        crate::sync::hint::spin_loop();
                    }
                    Steal::Empty => {}
                }
            }
            if !saw_retry {
                break;
            }
        }
        // ordering: Relaxed — diagnostic tally only.
        self.stats[wid]
            .failed_steals
            .fetch_add(1, Ordering::Relaxed);
        None
    }
}

/// The checked-out owner end of one worker's deque (see
/// [`TaskPool::worker`]). All scheduling calls a worker thread makes go
/// through its handle; dropping it returns the slot.
pub struct WorkerHandle<'p> {
    pool: &'p TaskPool,
    wid: usize,
}

impl WorkerHandle<'_> {
    /// This worker's id (deque index).
    pub fn id(&self) -> usize {
        self.wid
    }

    /// The pool this handle belongs to.
    pub fn pool(&self) -> &TaskPool {
        self.pool
    }

    /// Cheap pre-check of the §III-A capacity gate: is there room in
    /// *this worker's* deque? Only on `true` does the caller pay for the
    /// split.
    #[inline]
    pub fn has_room_hint(&self) -> bool {
        self.pool.deques[self.wid].len() < self.pool.capacity
    }

    /// The adaptive-granularity gate: should this worker publish a
    /// stealable frame right now? Always `true` without adaptive mode.
    /// With it: never split on a 1-worker pool (nobody can steal, so every
    /// snapshot would be pure overhead), otherwise follow the
    /// monitor-driven gate — with an instant override when any worker is
    /// parked, so a starving thief is fed at the victim's next step
    /// instead of waiting out a monitor tick.
    #[inline]
    pub fn split_allowed(&self) -> bool {
        let pool = self.pool;
        if !pool.adaptive {
            return true;
        }
        if pool.deques.len() == 1 {
            return false;
        }
        // ordering: Relaxed — both reads are advisory throttling hints; a
        // stale value costs at most one extra (or one deferred) split and
        // the idlers override re-fires on every subsequent step.
        pool.split_gate.load(Ordering::Relaxed) || pool.idlers.load(Ordering::Relaxed) > 0
    }

    /// Tries to push a split-off task onto this worker's own deque; fails
    /// when the deque is at capacity or the pool is done. Wakes one parked
    /// thread on success.
    // The Err variant returns ownership of the (snapshot-bearing, hence
    // large) task so the caller can unsplit without cloning; boxing it
    // would add a heap round-trip on the split path for a cold branch.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, task: Task) -> Result<(), Task> {
        let pool = self.pool;
        if pool.done.load(Ordering::Acquire) {
            return Err(task);
        }
        if pool.deques[self.wid].len() >= pool.capacity {
            return Err(task);
        }
        // Count the task *before* it becomes stealable so a fast thief
        // cannot drive `inflight` below zero.
        // ordering: SeqCst — `inflight` shares one total order with the
        // drain check (see `preregister_active`).
        pool.inflight.fetch_add(1, Ordering::SeqCst);
        pool.deques[self.wid].push(task);
        // ordering: Relaxed — both are diagnostic tallies only.
        pool.submitted.fetch_add(1, Ordering::Relaxed);
        pool.stats[self.wid].splits.fetch_add(1, Ordering::Relaxed);
        pool.wake_one();
        Ok(())
    }

    /// Blocks until a task is available or the pool terminates (`None`).
    ///
    /// Order of preference: own deque (LIFO), steal from a random victim
    /// (FIFO), global injector, park. Termination: nothing in flight
    /// anywhere, or an external stop via [`TaskPool::shutdown`].
    pub fn next_task(&self) -> Option<Task> {
        let pool = self.pool;
        loop {
            if pool.done.load(Ordering::Acquire) {
                return None;
            }
            if let Some(t) = pool.deques[self.wid].pop() {
                return Some(t);
            }
            if let Some(t) = pool.try_steal(self.wid) {
                return Some(t);
            }
            if let Some(t) = pool.pop_injected() {
                return Some(t);
            }
            // Nothing found: park. The idlers increment happens before the
            // work re-check; together with the pusher-side fence in
            // `wake_one` this closes the sleep/lost-wakeup race.
            // ordering: SeqCst — every `idlers` op joins the total order
            // with the pusher's fence + load in `wake_one`; the same order
            // covers the `inflight` drain check below.
            let mut guard = pool.park.lock().unwrap();
            pool.idlers.fetch_add(1, Ordering::SeqCst);
            loop {
                // ordering: Acquire — pairs with the Release `done` stores
                // so a woken worker sees every pre-shutdown write.
                if pool.done.load(Ordering::Acquire) {
                    // ordering: SeqCst — see the comment on the increment.
                    pool.idlers.fetch_sub(1, Ordering::SeqCst);
                    return None;
                }
                if pool.any_work_visible() {
                    // ordering: SeqCst — see the comment on the increment.
                    pool.idlers.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                    break; // retry the full acquisition loop
                }
                // ordering: SeqCst — the drain check must not reorder with
                // the visibility checks above (same total order as every
                // `inflight` update), or a racing push could be missed.
                if pool.inflight.load(Ordering::SeqCst) == 0 {
                    // Drained: nothing queued anywhere, nothing running.
                    // ordering: Release — publishes every pre-done write to
                    // the other workers' Acquire load of `done`.
                    pool.done.store(true, Ordering::Release);
                    // ordering: SeqCst — same total order as every other
                    // `idlers` op (see the increment above).
                    pool.idlers.fetch_sub(1, Ordering::SeqCst);
                    pool.cv.notify_all();
                    return None;
                }
                // ordering: Relaxed — diagnostic tally only.
                pool.stats[self.wid].parks.fetch_add(1, Ordering::Relaxed);
                guard = pool.cv.wait(guard).unwrap();
            }
        }
    }

    /// Balances one visible task (pushed, injected, or preregistered)
    /// after its execution finished; triggers termination when it was the
    /// last one in flight.
    pub fn task_done(&self) {
        let pool = self.pool;
        // ordering: Relaxed — diagnostic tally (feeds the adaptive
        // controller's steal-to-execute ratio; advisory only).
        pool.stats[self.wid]
            .executed
            .fetch_add(1, Ordering::Relaxed);
        // ordering: SeqCst — the final decrement must be totally ordered
        // with the parker's drain check so exactly one side declares done.
        let prev = pool.inflight.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "task_done without a matching visible task");
        if prev == 1 {
            // ordering: Release — publishes the finished task's effects
            // before the workers' Acquire load of `done`.
            pool.done.store(true, Ordering::Release);
            let _guard = pool.park.lock().unwrap();
            pool.cv.notify_all();
        }
    }
}

impl Drop for WorkerHandle<'_> {
    fn drop(&mut self) {
        self.pool.checked_out[self.wid].store(false, Ordering::Release);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use phylo::taxa::TaxonId;
    use phylo::tree::EdgeId;

    fn task(i: u32) -> Task {
        Task::probe(TaxonId(0), vec![EdgeId(i)])
    }

    #[test]
    fn split_gate_defaults_open_and_only_binds_adaptive_pools() {
        let mut p = TaskPool::new(2, 4);
        assert!(p.worker(0).split_allowed(), "non-adaptive: always allowed");
        p.set_split_gate(false);
        assert!(p.worker(0).split_allowed(), "gate ignored without adaptive");
        p.set_adaptive(true);
        assert!(p.worker(0).split_allowed(), "gate starts open");
        p.set_split_gate(false);
        assert!(!p.worker(0).split_allowed(), "closed gate blocks splits");
        p.set_split_gate(true);
        assert!(p.worker(0).split_allowed());
    }

    #[test]
    fn adaptive_single_worker_never_splits() {
        let mut p = TaskPool::new(1, 4);
        p.set_adaptive(true);
        assert!(!p.worker(0).split_allowed());
    }

    #[test]
    fn executed_counts_track_task_done() {
        let p = TaskPool::new(1, 4);
        let w = p.worker(0);
        w.try_push(task(0)).unwrap();
        w.try_push(task(1)).unwrap();
        let _ = w.next_task().unwrap();
        w.task_done();
        assert_eq!(p.scheduler_counts()[0].executed, 1);
        let _ = w.next_task().unwrap();
        w.task_done();
        assert_eq!(p.scheduler_counts()[0].executed, 2);
    }

    #[test]
    fn capacity_gates_own_deque() {
        let p = TaskPool::new(2, 2);
        let w = p.worker(0);
        assert!(w.try_push(task(0)).is_ok());
        assert!(w.try_push(task(1)).is_ok());
        assert!(w.try_push(task(2)).is_err());
        assert!(!w.has_room_hint());
        // The *other* worker's deque is independent.
        let w1 = p.worker(1);
        assert!(w1.has_room_hint());
        assert!(w1.try_push(task(3)).is_ok());
    }

    #[test]
    fn owner_pops_lifo() {
        let p = TaskPool::new(1, 8);
        let w = p.worker(0);
        w.try_push(task(0)).unwrap();
        w.try_push(task(1)).unwrap();
        assert_eq!(w.next_task().unwrap().branches[0], EdgeId(1));
        assert_eq!(w.next_task().unwrap().branches[0], EdgeId(0));
        w.task_done();
        w.task_done();
        // Both done ⇒ the pool reports drained.
        assert!(w.next_task().is_none());
        assert!(p.is_done());
    }

    #[test]
    fn idle_workers_steal_fifo() {
        let p = TaskPool::new(2, 8);
        let w0 = p.worker(0);
        w0.try_push(task(0)).unwrap();
        w0.try_push(task(1)).unwrap();
        let w1 = p.worker(1);
        // Worker 1 has nothing of its own: it must steal worker 0's
        // *oldest* task.
        assert_eq!(w1.next_task().unwrap().branches[0], EdgeId(0));
        assert_eq!(p.scheduler_counts()[1].steals, 1);
    }

    #[test]
    fn injected_tasks_reach_any_worker() {
        let p = TaskPool::new(2, 4);
        p.inject(task(7));
        assert_eq!(p.total_injected(), 1);
        let w1 = p.worker(1);
        assert_eq!(w1.next_task().unwrap().branches[0], EdgeId(7));
        w1.task_done();
        assert!(p.is_done());
    }

    #[test]
    fn drain_terminates_all_waiters() {
        let p = TaskPool::new(4, 4);
        p.inject(task(0));
        std::thread::scope(|s| {
            for wid in 0..4 {
                let p = &p;
                s.spawn(move || {
                    let w = p.worker(wid);
                    while let Some(_t) = w.next_task() {
                        w.task_done();
                    }
                });
            }
        });
        assert!(p.is_done());
    }

    #[test]
    fn shutdown_wakes_waiters() {
        let p = TaskPool::new(2, 4);
        // Keep work in flight so the second worker must park…
        p.preregister_active(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| p.worker(1).next_task());
            std::thread::sleep(std::time::Duration::from_millis(20));
            // …until an external stop wakes it with `None`.
            p.shutdown();
            assert!(h.join().unwrap().is_none());
        });
    }

    #[test]
    fn no_push_after_done() {
        let p = TaskPool::new(1, 4);
        p.shutdown();
        assert!(p.worker(0).try_push(task(0)).is_err());
    }

    #[test]
    fn no_pop_after_done() {
        let p = TaskPool::new(1, 4);
        let w = p.worker(0);
        w.try_push(task(0)).unwrap();
        p.shutdown();
        assert!(w.next_task().is_none());
    }

    #[test]
    #[should_panic(expected = "already checked out")]
    fn double_checkout_panics() {
        let p = TaskPool::new(1, 4);
        let _a = p.worker(0);
        let _b = p.worker(0);
    }

    #[test]
    fn handle_drop_releases_slot() {
        let p = TaskPool::new(1, 4);
        drop(p.worker(0));
        let _again = p.worker(0); // must not panic
    }

    #[test]
    fn preregistered_work_defers_termination() {
        // Regression for the premature-termination race documented on
        // `preregister_active`: a worker with no visible tasks must park,
        // not declare the pool drained, while a handed-off chunk runs.
        let p = TaskPool::new(2, 4);
        p.preregister_active(1);
        std::thread::scope(|s| {
            let parked = s.spawn(|| p.worker(1).next_task());
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!p.is_done(), "pool terminated while a chunk was running");
            // The chunk owner finishes: now the pool may drain.
            let w0 = p.worker(0);
            w0.task_done();
            assert!(parked.join().unwrap().is_none());
        });
        assert!(p.is_done());
    }
}
