//! The thread-pool coordination object: a bounded task queue guarded by a
//! mutex, a condition variable for busy-waiting threads, and termination
//! detection (§III-A/B).
//!
//! The paper blocks idle threads on a `std::condition_variable` keyed on
//! the task queue and guards the queue with OpenMP locks; we use
//! `parking_lot`'s `Mutex`/`Condvar`, which play the same roles. A cheap
//! atomic mirror of the queue length lets working threads test the
//! capacity condition without taking the lock on every state transition.

use crate::task::Task;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

struct PoolState {
    queue: VecDeque<Task>,
    /// Workers currently executing a task.
    active: usize,
    /// Set when the pool has drained: no tasks and no active workers, or an
    /// external stop was requested.
    done: bool,
}

/// Shared pool: bounded task queue + idle-thread parking + termination.
pub struct TaskPool {
    state: Mutex<PoolState>,
    cv: Condvar,
    capacity: usize,
    /// Lock-free mirror of `queue.len()` for the fast-path capacity check.
    len_hint: AtomicUsize,
    /// Total tasks ever submitted (diagnostics).
    submitted: AtomicUsize,
}

impl TaskPool {
    /// An empty pool with the given queue capacity.
    pub fn new(capacity: usize) -> Self {
        TaskPool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                done: false,
            }),
            cv: Condvar::new(),
            capacity,
            len_hint: AtomicUsize::new(0),
            submitted: AtomicUsize::new(0),
        }
    }

    /// The queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pre-marks `n` workers as active before they are spawned. The initial
    /// split hands chunks directly to threads (bypassing the bounded
    /// queue), so their activity must be registered up front — otherwise a
    /// chunk-less worker could observe "no tasks, nobody active" and
    /// declare the pool drained before work even starts.
    pub fn preregister_active(&self, n: usize) {
        self.state.lock().active += n;
    }

    /// Cheap pre-check: is there *probably* room in the queue? Workers call
    /// this on every state transition; only on `true` do they pay for the
    /// split and the lock.
    #[inline]
    pub fn has_room_hint(&self) -> bool {
        self.len_hint.load(Ordering::Relaxed) < self.capacity
    }

    /// Tries to enqueue a task; fails when the queue is at capacity or the
    /// pool is already done. Wakes one parked thread on success.
    pub fn try_push(&self, task: Task) -> Result<(), Task> {
        let mut st = self.state.lock();
        if st.done || st.queue.len() >= self.capacity {
            return Err(task);
        }
        st.queue.push_back(task);
        self.len_hint.store(st.queue.len(), Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until a task is available (marking the caller active) or the
    /// pool terminates (`None`). Termination: every worker idle with an
    /// empty queue, or an external stop via [`TaskPool::shutdown`].
    pub fn next_task(&self) -> Option<Task> {
        let mut st = self.state.lock();
        loop {
            if st.done {
                return None;
            }
            if let Some(t) = st.queue.pop_front() {
                self.len_hint.store(st.queue.len(), Ordering::Relaxed);
                st.active += 1;
                return Some(t);
            }
            if st.active == 0 {
                // Everyone is idle and there is no work left: drained.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Marks the calling worker idle again after finishing a task; triggers
    /// termination if it was the last active worker and the queue is empty.
    pub fn task_done(&self) {
        let mut st = self.state.lock();
        st.active -= 1;
        if st.active == 0 && st.queue.is_empty() {
            st.done = true;
            self.cv.notify_all();
        }
    }

    /// External stop (stopping rule fired): wakes every parked thread and
    /// prevents further pops.
    pub fn shutdown(&self) {
        let mut st = self.state.lock();
        st.done = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Total tasks ever submitted.
    pub fn total_submitted(&self) -> usize {
        self.submitted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::taxa::TaxonId;
    use phylo::tree::EdgeId;

    fn task(i: u32) -> Task {
        Task::at_split(TaxonId(0), vec![EdgeId(i)])
    }

    #[test]
    fn capacity_is_enforced() {
        let p = TaskPool::new(2);
        assert!(p.try_push(task(0)).is_ok());
        assert!(p.try_push(task(1)).is_ok());
        assert!(p.try_push(task(2)).is_err());
        assert!(!p.has_room_hint());
    }

    #[test]
    fn fifo_order() {
        let p = TaskPool::new(8);
        p.try_push(task(0)).unwrap();
        p.try_push(task(1)).unwrap();
        assert_eq!(p.next_task().unwrap().branches[0], EdgeId(0));
        assert_eq!(p.next_task().unwrap().branches[0], EdgeId(1));
        p.task_done();
        p.task_done();
    }

    #[test]
    fn drain_terminates_all_waiters() {
        let p = TaskPool::new(4);
        p.try_push(task(0)).unwrap();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(_t) = p.next_task() {
                        p.task_done();
                    }
                });
            }
        });
        assert!(p.next_task().is_none());
    }

    #[test]
    fn shutdown_wakes_waiters() {
        let p = TaskPool::new(4);
        // Main thread takes a task and stays "active", so a second
        // consumer must park (queue empty but work in flight)…
        p.try_push(task(0)).unwrap();
        let t = p.next_task().unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| p.next_task());
            std::thread::sleep(std::time::Duration::from_millis(20));
            // …until an external stop wakes it with `None`.
            p.shutdown();
            assert!(h.join().unwrap().is_none());
        });
        drop(t);
    }

    #[test]
    fn no_push_after_done() {
        let p = TaskPool::new(4);
        p.shutdown();
        assert!(p.try_push(task(0)).is_err());
    }
}
