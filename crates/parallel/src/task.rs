//! Tasks: the unit of work exchanged between threads (§III-A).
//!
//! A task is exactly the paper's two-component structure:
//!
//! 1. a *path* from the initial-split state `I_0` to a desired intermediate
//!    state `I_c` — the taxa to add, their insertion order and positions
//!    (edge ids, portable across threads thanks to the arena's
//!    deterministic id recycling);
//! 2. the very next taxon to insert at `I_c` and a precomputed subset of
//!    its admissible branches.

use phylo::taxa::TaxonId;
use phylo::tree::EdgeId;

/// A stealable unit of work, relative to the initial-split state `I_0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// Insertions taking an agile tree from `I_0` to `I_c`.
    pub path: Vec<(TaxonId, EdgeId)>,
    /// The taxon to insert at `I_c`.
    pub taxon: TaxonId,
    /// The branch subset assigned to this task.
    pub branches: Vec<EdgeId>,
}

impl Task {
    /// A task at `I_0` itself (empty path) — the initial-split chunks.
    pub fn at_split(taxon: TaxonId, branches: Vec<EdgeId>) -> Self {
        Task {
            path: Vec::new(),
            taxon,
            branches,
        }
    }
}

/// The paper's task-queue capacity rule (§III-A): `N_t + 1` below 8
/// threads, `N_t / 2` from 8 threads on.
pub fn paper_queue_capacity(threads: usize) -> usize {
    if threads < 8 {
        threads + 1
    } else {
        threads / 2
    }
}

/// Partitions `branches` into at most `parts` chunks "as uniformly as
/// possible" (paper §III-A: 5 branches over 4 threads → sizes 2,1,1,1).
/// Returns fewer chunks when there are fewer branches than parts; never
/// returns empty chunks.
pub fn partition_branches(branches: &[EdgeId], parts: usize) -> Vec<Vec<EdgeId>> {
    let parts = parts.min(branches.len()).max(1);
    if branches.is_empty() {
        return Vec::new();
    }
    let base = branches.len() / parts;
    let extra = branches.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        out.push(branches[at..at + take].to_vec());
        at += take;
    }
    debug_assert_eq!(at, branches.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn capacity_rule_matches_paper() {
        assert_eq!(paper_queue_capacity(2), 3);
        assert_eq!(paper_queue_capacity(4), 5);
        assert_eq!(paper_queue_capacity(7), 8);
        assert_eq!(paper_queue_capacity(8), 4);
        assert_eq!(paper_queue_capacity(16), 8);
        assert_eq!(paper_queue_capacity(48), 24);
    }

    #[test]
    fn partition_five_over_four() {
        let b: Vec<EdgeId> = (0..5).map(e).collect();
        let parts = partition_branches(&b, 4);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![2, 1, 1, 1]);
        let flat: Vec<EdgeId> = parts.into_iter().flatten().collect();
        assert_eq!(flat, b);
    }

    #[test]
    fn partition_fewer_branches_than_parts() {
        let b: Vec<EdgeId> = (0..2).map(e).collect();
        let parts = partition_branches(&b, 5);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn partition_single_part() {
        let b: Vec<EdgeId> = (0..3).map(e).collect();
        let parts = partition_branches(&b, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], b);
    }

    #[test]
    fn partition_empty() {
        assert!(partition_branches(&[], 4).is_empty());
    }
}
