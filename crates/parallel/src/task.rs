//! Tasks: the unit of work exchanged between threads (§III-A).
//!
//! The paper describes a task as a *path* from the initial-split state
//! `I_0` to a desired intermediate state `I_c`, which the receiving thread
//! replays through the mapping kernels. With the PR 5 edge-indexed kernels
//! per-state work became so cheap that replaying `O(depth)` insertions per
//! steal dominated; tasks now carry a [`StateSnapshot`] instead — an owned
//! copy of the agile tree, the remaining taxa and the *live* projection
//! state — so a thief resumes in one `O(state)` move with zero kernel
//! work. The snapshot clone is paid once, by the splitter, at publish
//! time.

use gentrius_core::state::StateSnapshot;
use phylo::taxa::TaxonId;
use phylo::tree::EdgeId;

/// A stealable unit of work: a resumable state plus the frontier to
/// explore from it.
#[derive(Clone, Debug)]
pub struct Task {
    /// Owned state at `I_c`, resumable without replay.
    pub snapshot: StateSnapshot,
    /// The taxon to insert at `I_c`.
    pub taxon: TaxonId,
    /// The branch subset assigned to this task.
    pub branches: Vec<EdgeId>,
    /// Insertions applied between `I_0` and `I_c` (diagnostics: the
    /// `snapshot_depth` of the task's trace span).
    pub depth: usize,
}

impl Task {
    /// A task resuming `snapshot` on `taxon` × `branches`, `depth`
    /// insertions past `I_0`.
    pub fn new(
        snapshot: StateSnapshot,
        taxon: TaxonId,
        branches: Vec<EdgeId>,
        depth: usize,
    ) -> Self {
        Task {
            snapshot,
            taxon,
            branches,
            depth,
        }
    }

    /// A scheduler-test probe: carries a sentinel snapshot that is never
    /// resumed. Lets deque/pool/loom tests construct tasks without a
    /// [`gentrius_core::problem::StandProblem`].
    pub fn probe(taxon: TaxonId, branches: Vec<EdgeId>) -> Self {
        Task {
            snapshot: StateSnapshot::sentinel(),
            taxon,
            branches,
            depth: 0,
        }
    }
}

/// The paper's task-queue capacity rule (§III-A): `N_t + 1` below 8
/// threads, `N_t / 2` from 8 threads on.
pub fn paper_queue_capacity(threads: usize) -> usize {
    if threads < 8 {
        threads + 1
    } else {
        threads / 2
    }
}

/// Partitions `branches` into at most `parts` chunks "as uniformly as
/// possible" (paper §III-A: 5 branches over 4 threads → sizes 2,1,1,1).
/// Returns fewer chunks when there are fewer branches than parts; never
/// returns empty chunks.
pub fn partition_branches(branches: &[EdgeId], parts: usize) -> Vec<Vec<EdgeId>> {
    let parts = parts.min(branches.len()).max(1);
    if branches.is_empty() {
        return Vec::new();
    }
    let base = branches.len() / parts;
    let extra = branches.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        out.push(branches[at..at + take].to_vec());
        at += take;
    }
    debug_assert_eq!(at, branches.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn probe_tasks_carry_their_branches() {
        let t = Task::probe(TaxonId(3), vec![e(1), e(4)]);
        assert_eq!(t.taxon, TaxonId(3));
        assert_eq!(t.branches, vec![e(1), e(4)]);
        assert_eq!(t.depth, 0);
        assert_eq!(t.snapshot.remaining_count(), 0);
    }

    #[test]
    fn capacity_rule_matches_paper() {
        assert_eq!(paper_queue_capacity(2), 3);
        assert_eq!(paper_queue_capacity(4), 5);
        assert_eq!(paper_queue_capacity(7), 8);
        assert_eq!(paper_queue_capacity(8), 4);
        assert_eq!(paper_queue_capacity(16), 8);
        assert_eq!(paper_queue_capacity(48), 24);
    }

    #[test]
    fn partition_five_over_four() {
        let b: Vec<EdgeId> = (0..5).map(e).collect();
        let parts = partition_branches(&b, 4);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![2, 1, 1, 1]);
        let flat: Vec<EdgeId> = parts.into_iter().flatten().collect();
        assert_eq!(flat, b);
    }

    #[test]
    fn partition_fewer_branches_than_parts() {
        let b: Vec<EdgeId> = (0..2).map(e).collect();
        let parts = partition_branches(&b, 5);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn partition_single_part() {
        let b: Vec<EdgeId> = (0..3).map(e).collect();
        let parts = partition_branches(&b, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], b);
    }

    #[test]
    fn partition_empty() {
        assert!(partition_branches(&[], 4).is_empty());
    }
}
