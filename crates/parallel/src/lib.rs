//! # gentrius-parallel — the paper's thread-pooling / work-stealing engine
//!
//! A faithful Rust implementation of §III of *"Parallel Inference of
//! Phylogenetic Stands with Gentrius"* (IPPS 2023):
//!
//! * a deterministic serial prefix up to the **initial-split state** `I_0`
//!   (the first state whose next taxon has two or more admissible
//!   branches), whose branch set is divided among threads as uniformly as
//!   possible;
//! * **work stealing** via a bounded task queue: working threads carve off
//!   half of the current state's admissible branches together with the
//!   *path* `I_0 → I_c` (portable `(taxon, edge)` insertions), and parked
//!   threads replay the path on their private agile-tree copy and continue
//!   from there;
//! * **batched atomic counters** for stand trees / intermediate states /
//!   dead ends, with stopping rules evaluated on flush (limits may be
//!   overshot by at most one batch per thread, as in the paper);
//! * termination via condition-variable parking (the paper's
//!   `std::condition_variable` + OpenMP-lock construction, rendered with
//!   `parking_lot`).
//!
//! ```
//! use gentrius_core::{GentriusConfig, StandProblem};
//! use gentrius_parallel::{run_parallel, ParallelConfig};
//! use phylo::newick::parse_forest;
//!
//! let (_, trees) = parse_forest(["((A,B),(C,D));", "((A,E),(F,G));"]).unwrap();
//! let problem = StandProblem::from_constraints(trees).unwrap();
//! let result = run_parallel(
//!     &problem,
//!     &GentriusConfig::exhaustive(),
//!     &ParallelConfig::with_threads(2),
//! )
//! .unwrap();
//! assert!(result.complete());
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod engine;
pub mod pool;
pub mod task;

pub use counters::{FlushThresholds, GlobalCounters, LocalCounters};
pub use engine::{run_parallel, run_parallel_with_sinks, ParallelConfig, ParallelRunResult, TaskSpan, WorkerReport};
pub use pool::TaskPool;
pub use task::{paper_queue_capacity, partition_branches, Task};
