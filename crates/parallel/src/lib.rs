//! # gentrius-parallel — the paper's thread-pooling / work-stealing engine
//!
//! A faithful Rust implementation of §III of *"Parallel Inference of
//! Phylogenetic Stands with Gentrius"* (IPPS 2023):
//!
//! * a deterministic serial prefix up to the **initial-split state** `I_0`
//!   (the first state whose next taxon has two or more admissible
//!   branches), whose branch set is divided among threads as uniformly as
//!   possible;
//! * **work stealing** via a two-level scheduler: each worker owns a
//!   lock-free Chase–Lev deque ([`deque`]) it pushes split-off tasks onto
//!   (LIFO for itself, FIFO for thieves), idle workers steal from
//!   randomly selected victims, and a small global injector seeds the
//!   initial-split chunks. Tasks carry half of the current state's
//!   admissible branches together with an owned **state snapshot** (agile
//!   tree + remaining-taxa order + mapping engines forked live-only); the
//!   receiving thread resumes the snapshot directly in O(depth) instead
//!   of replaying the `I_0 → I_c` insertion path in O(depth × kernel).
//!   The paper's bounded central queue survives as a *per-deque* capacity
//!   hint: a worker only splits while its own deque has room (§III-A), so
//!   the capacity ablation keeps its meaning — and because a split now
//!   costs an O(state) clone, an **adaptive split gate** driven by the
//!   run monitor's sampled steal-to-execute ratio closes publication
//!   while the pool is saturated (with an idlers override so a parked
//!   thief is never starved);
//! * **batched atomic counters** for stand trees / intermediate states /
//!   dead ends, with the count-based stopping rules evaluated on flush
//!   (count limits may be overshot by at most one batch per thread, as in
//!   the paper). The wall-clock rule is enforced by the engine's **run
//!   monitor** ([`obs::monitor`]): a supervisor thread that ticks every
//!   ~50 ms, raises `StopCause::TimeLimit` when the budget runs out, and
//!   wakes parked workers — flush-side checks alone cannot bound time
//!   overshoot, because parked or starved workers never flush;
//! * termination detection via a single in-flight task count, with idle
//!   workers parked on a condition variable (the paper's
//!   `std::condition_variable` construction; the mutex guards nothing but
//!   the parking) and per-worker steal/park/split statistics surfaced
//!   through [`engine::EngineReport`];
//! * an **observability layer** ([`obs`]): the run monitor's heartbeat
//!   ring, a schema-versioned run-metrics JSON export, and a
//!   Chrome-trace-event export of the per-worker task timeline.
//!
//! ## Scheduler testing
//!
//! The scheduler is exercised at three levels: deque-level interleaving
//! tests (`deque` unit tests and `tests/scheduler_interleave.rs` hammer
//! push/pop/steal from many threads and assert every task executes
//! exactly once), pool-level termination tests (including a regression
//! test for the premature-termination race around
//! [`TaskPool::preregister_active`]), and an end-to-end differential
//! harness (`tests/engine_differential.rs` in the workspace umbrella
//! crate) that checks the parallel engine against the serial driver on
//! dozens of randomized instances at 1/2/4/8 threads.
//!
//! On top of that, the runtime's synchronization protocol is *model
//! checked*: every protocol-relevant primitive is imported through the
//! [`sync`] facade, which swaps in the `loom` interleaving explorer when
//! built with `RUSTFLAGS="--cfg loom"`. The loom suites
//! (`tests/loom_*.rs`) exhaustively enumerate schedules (up to a
//! preemption bound) of the deque's push/pop/steal/grow paths, the
//! counters' flush → stop-flag protocol, the pool's park/wake and
//! termination detection, and the snapshot-handoff publication and
//! adaptive-gate protocols (`loom_handoff.rs`). Weak-memory coverage beyond loom's
//! sequentially consistent exploration comes from the Miri and TSan CI
//! jobs (`.github/workflows/concurrency.yml`).
//!
//! ```
//! use gentrius_core::{GentriusConfig, StandProblem};
//! use gentrius_parallel::{run_parallel, ParallelConfig};
//! use phylo::newick::parse_forest;
//!
//! let (_, trees) = parse_forest(["((A,B),(C,D));", "((A,E),(F,G));"]).unwrap();
//! let problem = StandProblem::from_constraints(trees).unwrap();
//! let result = run_parallel(
//!     &problem,
//!     &GentriusConfig::exhaustive(),
//!     &ParallelConfig::with_threads(2),
//! )
//! .unwrap();
//! assert!(result.complete());
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod deque;
pub mod engine;
pub mod obs;
pub mod pool;
pub mod sync;
pub mod task;

pub use counters::{FlushThresholds, GlobalCounters, LocalCounters};
pub use deque::{Steal, StealDeque};
pub use engine::{
    run_parallel, run_parallel_epoch, run_parallel_with_sinks, EngineReport, ParallelConfig,
    ParallelRunResult, ResumeFrontier, TaskSpan, WorkerReport,
};
pub use obs::{Heartbeat, MonitorConfig, MonitorReport};
pub use pool::{SchedulerCounts, TaskPool, WorkerHandle};
pub use task::{paper_queue_capacity, partition_branches, Task};
