//! Global atomic counters with per-thread batched flushing (§III-B).
//!
//! The paper protects the stand-tree / intermediate-state / dead-end
//! counters with `std::atomic` and, to avoid contention at high thread
//! counts, lets each thread update the globals only every 2^10 stand trees,
//! 2^13 states and 2^10 dead ends respectively (empirically tuned there to
//! a 2–5% speedup at 16 threads). Each flush also evaluates the stopping
//! rules and, if one fires, raises a global stop flag that all workers poll.
//!
//! Overshoot semantics differ per rule class, and the distinction matters:
//!
//! * the two **count limits** (rules 1–2) can only be overshot by work that
//!   was already performed before the deciding flush — at most one batch
//!   per thread, as in the paper; the final counts are exact for the work
//!   actually done;
//! * the **wall-clock limit** (rule 3) is *not* safely enforceable from
//!   flushes alone: a run whose workers are parked on the idle condvar, or
//!   progressing below every flush threshold, never reaches
//!   [`GlobalCounters::add_and_check`] and would overshoot `max_time`
//!   without bound. The flush-path clock check below is therefore only a
//!   fast path; the authoritative enforcement is the engine's run monitor
//!   ([`crate::obs::monitor`]), which re-examines the clock every tick and
//!   wakes parked workers when it raises the stop.

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use gentrius_core::config::{StopCause, StoppingRules};
use gentrius_core::stats::RunStats;
use std::time::Instant;

/// Flush thresholds for the three local counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushThresholds {
    /// Stand trees per flush (paper: 2^10).
    pub stand_trees: u64,
    /// Intermediate states per flush (paper: 2^13).
    pub intermediate_states: u64,
    /// Dead ends per flush (paper: 2^10).
    pub dead_ends: u64,
}

impl FlushThresholds {
    /// The paper's empirically determined values.
    pub fn paper_defaults() -> Self {
        FlushThresholds {
            stand_trees: 1 << 10,
            intermediate_states: 1 << 13,
            dead_ends: 1 << 10,
        }
    }

    /// Coarser thresholds (8× the paper's state threshold, 8× trees/dead
    /// ends) for runs where the edge-indexed kernels make states so cheap
    /// that even the paper's flush cadence shows up in the profile. The
    /// stopping rules lag by at most one batch per worker either way.
    pub fn coarse() -> Self {
        FlushThresholds {
            stand_trees: 1 << 13,
            intermediate_states: 1 << 16,
            dead_ends: 1 << 13,
        }
    }

    /// Flush on every increment — the unbatched baseline of the §III-B
    /// ablation.
    pub fn unbatched() -> Self {
        FlushThresholds {
            stand_trees: 1,
            intermediate_states: 1,
            dead_ends: 1,
        }
    }
}

impl Default for FlushThresholds {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

const CAUSE_NONE: u8 = 0;
const CAUSE_TREES: u8 = 1;
const CAUSE_STATES: u8 = 2;
const CAUSE_TIME: u8 = 3;

/// The shared counters, stop flag and stopping rules.
pub struct GlobalCounters {
    stand_trees: AtomicU64,
    intermediate_states: AtomicU64,
    dead_ends: AtomicU64,
    stop: AtomicBool,
    cause: AtomicU8,
    rules: StoppingRules,
    started: Instant,
}

impl GlobalCounters {
    /// Fresh counters with the given stopping rules; the wall clock for
    /// rule 3 starts now.
    pub fn new(rules: StoppingRules) -> Self {
        GlobalCounters {
            stand_trees: AtomicU64::new(0),
            intermediate_states: AtomicU64::new(0),
            dead_ends: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            cause: AtomicU8::new(CAUSE_NONE),
            rules,
            started: Instant::now(),
        }
    }

    /// Counters seeded from a previous epoch's totals, for resumed runs.
    ///
    /// A resumed run must evaluate the stopping rules against *cumulative*
    /// progress — a `--max-trees 1000` run checkpointed at 600 trees has
    /// 400 left, not 1000 — so the three counters start at the checkpoint's
    /// totals and [`GlobalCounters::snapshot`] keeps reporting cumulative
    /// figures. The wall clock for rule 3 still starts now: elapsed time
    /// before the checkpoint was already accounted for by the epoch that
    /// wrote it. (Checkpoint-aware callers rebase `max_time` themselves if
    /// they want a cumulative wall-clock budget.)
    pub fn with_base(rules: StoppingRules, base: RunStats) -> Self {
        GlobalCounters {
            stand_trees: AtomicU64::new(base.stand_trees),
            intermediate_states: AtomicU64::new(base.intermediate_states),
            dead_ends: AtomicU64::new(base.dead_ends),
            stop: AtomicBool::new(false),
            cause: AtomicU8::new(CAUSE_NONE),
            rules,
            started: Instant::now(),
        }
    }

    /// True once any stopping rule has fired (polled by every worker).
    ///
    /// Acquire, pairing with the Release store in
    /// [`GlobalCounters::raise_stop`]: a worker that observes `true` here
    /// is guaranteed to also observe the cause CAS that preceded it, so
    /// [`GlobalCounters::stop_cause`] cannot transiently read `None` after
    /// `stopped()` returned `true`. (Found by the loom model in
    /// `tests/loom_counters.rs`; the original `Relaxed` load allowed the
    /// stop flag to outrun the cause byte.)
    #[inline]
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The first stopping rule that fired, if any.
    pub fn stop_cause(&self) -> Option<StopCause> {
        match self.cause.load(Ordering::Acquire) {
            CAUSE_TREES => Some(StopCause::StandTreeLimit),
            CAUSE_STATES => Some(StopCause::StateLimit),
            CAUSE_TIME => Some(StopCause::TimeLimit),
            _ => None,
        }
    }

    /// Raises the stop flag with `cause` (first writer wins).
    pub fn raise_stop(&self, cause: StopCause) {
        let c = match cause {
            StopCause::StandTreeLimit => CAUSE_TREES,
            StopCause::StateLimit => CAUSE_STATES,
            StopCause::TimeLimit => CAUSE_TIME,
        };
        // ordering: Relaxed failure — losing the first-writer race needs no
        // edge; the winning cause was already published with AcqRel.
        let _ = self
            .cause
            .compare_exchange(CAUSE_NONE, c, Ordering::AcqRel, Ordering::Relaxed);
        // ordering: Release — orders the cause publication above before the
        // flag; `stopped()` loads the flag with Acquire, then the cause.
        self.stop.store(true, Ordering::Release);
    }

    /// True once the wall-clock budget (rule 3) is exhausted. Polled by
    /// the run monitor ([`crate::obs::monitor`]) every tick and by the
    /// flush fast path below.
    pub fn time_limit_exceeded(&self) -> bool {
        match self.rules.max_time {
            Some(max) => self.started.elapsed() >= max,
            None => false,
        }
    }

    /// Snapshot of the flushed totals.
    ///
    /// Reads `dead_ends` *before* `intermediate_states`, pairing with the
    /// publication order in [`GlobalCounters::add_and_check`]: every batch
    /// publishes its states before its dead ends, so any dead-end count a
    /// snapshot observes is covered by an already-visible state count and
    /// `dead_ends <= intermediate_states` holds at *every* snapshot (the
    /// differential harness asserts this on live heartbeat samples).
    pub fn snapshot(&self) -> RunStats {
        let dead_ends = self.dead_ends.load(Ordering::Acquire);
        let intermediate_states = self.intermediate_states.load(Ordering::Acquire);
        let stand_trees = self.stand_trees.load(Ordering::Acquire);
        RunStats {
            stand_trees,
            intermediate_states,
            dead_ends,
        }
    }

    /// Adds a batch to the globals and evaluates the stopping rules.
    ///
    /// States are published before dead ends (see
    /// [`GlobalCounters::snapshot`] for the pairing). The clock check at
    /// the end is only the fast path for rule 3 — see the module docs.
    fn add_and_check(&self, trees: u64, states: u64, dead: u64) {
        if trees > 0 {
            let total = self.stand_trees.fetch_add(trees, Ordering::AcqRel) + trees;
            if let Some(max) = self.rules.max_stand_trees {
                if total >= max {
                    self.raise_stop(StopCause::StandTreeLimit);
                }
            }
        }
        if states > 0 {
            let total = self.intermediate_states.fetch_add(states, Ordering::AcqRel) + states;
            if let Some(max) = self.rules.max_intermediate_states {
                if total >= max {
                    self.raise_stop(StopCause::StateLimit);
                }
            }
        }
        if dead > 0 {
            self.dead_ends.fetch_add(dead, Ordering::AcqRel);
        }
        if self.time_limit_exceeded() {
            self.raise_stop(StopCause::TimeLimit);
        }
    }
}

/// Per-thread counter buffer; flushes into a [`GlobalCounters`] when a
/// threshold is crossed and unconditionally on [`LocalCounters::flush`].
pub struct LocalCounters<'g> {
    global: &'g GlobalCounters,
    thresholds: FlushThresholds,
    pending: RunStats,
    /// Lifetime totals recorded through this local buffer (for per-thread
    /// load-balance diagnostics).
    total: RunStats,
}

impl<'g> LocalCounters<'g> {
    /// A new empty buffer bound to `global`.
    pub fn new(global: &'g GlobalCounters, thresholds: FlushThresholds) -> Self {
        LocalCounters {
            global,
            thresholds,
            pending: RunStats::new(),
            total: RunStats::new(),
        }
    }

    /// Records one stand tree.
    #[inline]
    pub fn stand_tree(&mut self) {
        self.pending.stand_trees += 1;
        self.total.stand_trees += 1;
        if self.pending.stand_trees >= self.thresholds.stand_trees {
            self.flush();
        }
    }

    /// Records one intermediate state.
    #[inline]
    pub fn intermediate_state(&mut self) {
        self.pending.intermediate_states += 1;
        self.total.intermediate_states += 1;
        if self.pending.intermediate_states >= self.thresholds.intermediate_states {
            self.flush();
        }
    }

    /// Records one dead end (the accompanying intermediate state must be
    /// recorded separately, mirroring the driver's convention).
    #[inline]
    pub fn dead_end(&mut self) {
        self.pending.dead_ends += 1;
        self.total.dead_ends += 1;
        if self.pending.dead_ends >= self.thresholds.dead_ends {
            self.flush();
        }
    }

    /// Pushes all pending counts to the globals and checks stopping rules.
    pub fn flush(&mut self) {
        let p = std::mem::take(&mut self.pending);
        self.global
            .add_and_check(p.stand_trees, p.intermediate_states, p.dead_ends);
    }

    /// Lifetime totals recorded by this thread.
    pub fn totals(&self) -> RunStats {
        self.total
    }
}

impl Drop for LocalCounters<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn batched_flush_defers_global_visibility() {
        let g = GlobalCounters::new(StoppingRules::unlimited());
        let mut l = LocalCounters::new(&g, FlushThresholds::paper_defaults());
        for _ in 0..100 {
            l.intermediate_state();
        }
        assert_eq!(g.snapshot().intermediate_states, 0); // below 2^13
        l.flush();
        assert_eq!(g.snapshot().intermediate_states, 100);
        assert_eq!(l.totals().intermediate_states, 100);
    }

    #[test]
    fn threshold_crossing_flushes() {
        let g = GlobalCounters::new(StoppingRules::unlimited());
        let t = FlushThresholds {
            stand_trees: 4,
            intermediate_states: 4,
            dead_ends: 4,
        };
        let mut l = LocalCounters::new(&g, t);
        for _ in 0..4 {
            l.stand_tree();
        }
        assert_eq!(g.snapshot().stand_trees, 4);
    }

    #[test]
    fn stopping_rule_raises_stop_on_flush() {
        let g = GlobalCounters::new(StoppingRules::counts(10, u64::MAX));
        let mut l = LocalCounters::new(&g, FlushThresholds::unbatched());
        for _ in 0..9 {
            l.stand_tree();
        }
        assert!(!g.stopped());
        l.stand_tree();
        assert!(g.stopped());
        assert_eq!(g.stop_cause(), Some(StopCause::StandTreeLimit));
    }

    #[test]
    fn first_cause_wins() {
        let g = GlobalCounters::new(StoppingRules::unlimited());
        g.raise_stop(StopCause::StateLimit);
        g.raise_stop(StopCause::StandTreeLimit);
        assert_eq!(g.stop_cause(), Some(StopCause::StateLimit));
    }

    #[test]
    fn drop_flushes_pending() {
        let g = GlobalCounters::new(StoppingRules::unlimited());
        {
            let mut l = LocalCounters::new(&g, FlushThresholds::paper_defaults());
            l.dead_end();
            l.dead_end();
        }
        assert_eq!(g.snapshot().dead_ends, 2);
    }

    #[test]
    fn concurrent_flushes_sum_correctly() {
        let g = GlobalCounters::new(StoppingRules::unlimited());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut l = LocalCounters::new(
                        &g,
                        FlushThresholds {
                            stand_trees: 7,
                            intermediate_states: 7,
                            dead_ends: 7,
                        },
                    );
                    for _ in 0..1000 {
                        l.stand_tree();
                        l.intermediate_state();
                    }
                });
            }
        });
        let s = g.snapshot();
        assert_eq!(s.stand_trees, 4000);
        assert_eq!(s.intermediate_states, 4000);
    }
}
