//! The parallel Gentrius engine (§III): deterministic serial prefix up to
//! the initial-split state `I_0`, uniform distribution of the split
//! branches over the workers, and thread-pool work stealing with
//! snapshot-handoff tasks thereafter (a task carries a resumable
//! [`gentrius_core::state::StateSnapshot`] instead of a replayable path —
//! see `task.rs` for the trade-off).

use crate::counters::{FlushThresholds, GlobalCounters, LocalCounters};
use crate::obs::monitor::{spawn_monitor, MonitorConfig, MonitorReport, MonitorShared};
use crate::pool::{SchedulerCounts, TaskPool, WorkerHandle};
use crate::task::{paper_queue_capacity, partition_branches, Task};
use gentrius_core::config::{GentriusConfig, StopCause};
use gentrius_core::explore::{Explorer, StepEvent};
use gentrius_core::problem::{ProblemError, StandProblem};
use gentrius_core::sink::{CountOnly, StandSink};
use gentrius_core::state::SearchState;
use gentrius_core::stats::RunStats;
use phylo::ops::compatible;
use phylo::tree::EdgeId;
use std::time::{Duration, Instant};

/// Parallel-engine knobs on top of the algorithmic [`GentriusConfig`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of worker threads (`N_t`).
    pub threads: usize,
    /// Counter-flush batching (§III-B; `unbatched()` for the ablation).
    pub flush: FlushThresholds,
    /// Per-worker deque capacity (the §III-A "split only when there is
    /// room" gate); `None` applies the paper rule
    /// (`N_t + 1` if `N_t < 8`, else `N_t / 2`).
    pub queue_capacity: Option<usize>,
    /// Minimum remaining taxa for a thread to submit a task (§III-A: deep
    /// threads, with fewer than three taxa left, may not submit).
    pub min_remaining_for_split: usize,
    /// Seed for the scheduler's randomized victim selection (varies the
    /// steal order; results must be independent of it).
    pub steal_seed: u64,
    /// Record per-worker task spans (wall-clock seconds since engine
    /// start) in the [`WorkerReport`]s.
    pub trace: bool,
    /// Run-monitor settings (`None` disables the supervisor thread). The
    /// monitor is what enforces the wall-clock stopping rule — counter
    /// flushes cannot, because parked or starved workers never flush — so
    /// disable it only in tests that deliberately model the old behavior.
    pub monitor: Option<MonitorConfig>,
    /// Adaptive task granularity: gate split publication on the observed
    /// steal-to-execute ratio (sampled each monitor tick), so workers stop
    /// paying for state snapshots once the pool is saturated. A single
    /// worker under this mode never splits at all (nobody can steal).
    pub adaptive_split: bool,
    /// Steps between polls of the shared stop flag in the worker hot loop.
    /// Larger strides keep the (cheap but shared) flag read off the
    /// per-state path; the stop-overshoot bound grows by at most one
    /// stride per worker. Tests asserting tight overshoot bounds set 1.
    pub stop_poll_stride: usize,
}

impl ParallelConfig {
    /// Paper-faithful settings for `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            flush: FlushThresholds::paper_defaults(),
            queue_capacity: None,
            min_remaining_for_split: 3,
            steal_seed: 0,
            trace: false,
            monitor: Some(MonitorConfig::default()),
            adaptive_split: true,
            stop_poll_stride: 64,
        }
    }

    fn capacity(&self) -> usize {
        self.queue_capacity
            .unwrap_or_else(|| paper_queue_capacity(self.threads))
    }
}

/// One executed task on one worker, in wall-clock seconds since engine
/// start (recorded only with [`ParallelConfig::trace`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskSpan {
    /// Seconds from engine start when the task began (resume included).
    pub start: f64,
    /// Seconds from engine start when the worker went idle again.
    pub end: f64,
    /// Insertions between `I_0` and the task's snapshot state (steal depth
    /// diagnostics; 0 for the initial-split chunks). Replaces the old
    /// replayed-path length, which is always 0 under snapshot handoff.
    pub snapshot_depth: usize,
}

/// Per-worker diagnostics (load balance, §III's motivation).
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Tasks this worker executed (initial chunk included).
    pub tasks_executed: usize,
    /// Work counted by this worker.
    pub stats: RunStats,
    /// Scheduler activity: steals, failed steal sweeps, parks, splits.
    pub sched: SchedulerCounts,
    /// Wall-clock task spans (empty unless tracing was enabled).
    pub spans: Vec<TaskSpan>,
}

/// Aggregate scheduler diagnostics for one engine run: what the two-level
/// scheduler (per-worker steal deques + global injector) actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Steal sweeps that came back empty-handed.
    pub failed_steals: u64,
    /// Times a worker parked on the idle condvar.
    pub parks: u64,
    /// Tasks split off and pushed onto worker deques.
    pub splits: u64,
    /// Tasks completed across all workers (the adaptive controller's
    /// steal-to-execute denominator).
    pub executed: u64,
    /// Initial-split chunks routed through the global injector.
    pub injected: u64,
    /// Deque ring-buffer doublings across all workers (the Chase–Lev
    /// `grow` path; non-zero whenever a deque outgrew its small initial
    /// buffer — the churn stress profile asserts on this).
    pub deque_grows: u64,
    /// Per-worker breakdown, in thread order.
    pub per_worker: Vec<SchedulerCounts>,
}

impl EngineReport {
    /// Builds the aggregate from per-worker counts plus the injector and
    /// deque-grow tallies.
    fn from_counts(per_worker: Vec<SchedulerCounts>, injected: u64, deque_grows: u64) -> Self {
        let mut total = SchedulerCounts::default();
        for w in &per_worker {
            total.merge(w);
        }
        EngineReport {
            steals: total.steals,
            failed_steals: total.failed_steals,
            parks: total.parks,
            splits: total.splits,
            executed: total.executed,
            injected,
            deque_grows,
            per_worker,
        }
    }

    /// An all-zero report for runs that never started the pool, sized for
    /// `threads` workers.
    fn empty(threads: usize) -> Self {
        EngineReport {
            per_worker: vec![SchedulerCounts::default(); threads],
            ..EngineReport::default()
        }
    }
}

/// Outcome of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelRunResult {
    /// Global counters (exact totals of the work performed). Count-based
    /// stopping limits may be overshot by up to one flush batch per
    /// thread, as in the paper; the wall-clock limit is enforced by the
    /// run monitor to within about one monitor tick.
    pub stats: RunStats,
    /// The stopping rule that fired, if any.
    pub stop: Option<StopCause>,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Index of the initial agile tree.
    pub initial_tree: usize,
    /// Counters accumulated by the serial prefix (root → `I_0`).
    pub prefix: RunStats,
    /// Tasks submitted through worker deques (excludes the initial chunks).
    pub stolen_tasks: usize,
    /// Aggregate scheduler diagnostics (steal/park/split activity).
    pub scheduler: EngineReport,
    /// Per-worker reports, in thread order.
    pub workers: Vec<WorkerReport>,
    /// What the run monitor observed (all-default when disabled).
    pub monitor: MonitorReport,
}

impl ParallelRunResult {
    /// True if the stand was fully enumerated.
    pub fn complete(&self) -> bool {
        self.stop.is_none()
    }
}

/// A frontier to resume from: the pending task descriptors of a previous
/// epoch plus the cumulative counters it had reached. Fed to
/// [`run_parallel_epoch`], which skips the serial prefix and initial split
/// (that work is *inside* the descriptors) and seeds the global counters
/// so the stopping rules fire against cumulative totals.
pub struct ResumeFrontier {
    /// The pending work, exactly as captured by a previous epoch. A task
    /// with an **empty** branch list is the synthetic complete-state
    /// descriptor (its snapshot is a finished stand tree that was counted
    /// as pending, not emitted); workers re-emit it via the root-complete
    /// path.
    pub tasks: Vec<Task>,
    /// Cumulative counters over all previous epochs.
    pub base: RunStats,
}

/// Counts the stand in parallel (no topology output).
pub fn run_parallel(
    problem: &StandProblem,
    config: &GentriusConfig,
    pcfg: &ParallelConfig,
) -> Result<ParallelRunResult, ProblemError> {
    let (r, _sinks) = run_parallel_with_sinks(problem, config, pcfg, |_| CountOnly)?;
    Ok(r)
}

/// Runs the parallel engine, giving each execution context its own sink:
/// index 0 belongs to the serial prefix (main thread), index `1 + t` to
/// worker `t`. Returned in that order for merging.
pub fn run_parallel_with_sinks<S, F>(
    problem: &StandProblem,
    config: &GentriusConfig,
    pcfg: &ParallelConfig,
    make_sink: F,
) -> Result<(ParallelRunResult, Vec<S>), ProblemError>
where
    S: StandSink + Send,
    F: Fn(usize) -> S,
{
    let (r, sinks, _frontier) = run_parallel_epoch(problem, config, pcfg, make_sink, None, false)?;
    Ok((r, sinks))
}

/// Runs **one epoch** of the parallel engine — the checkpoint-aware entry.
///
/// Identical to [`run_parallel_with_sinks`] plus two capabilities:
///
/// * `resume` — start from a previous epoch's [`ResumeFrontier`] instead
///   of the serial prefix + initial split: the descriptors are injected
///   directly and the global counters are seeded with the frontier's
///   cumulative base, so the reported stats (and the stopping rules) are
///   cumulative across epochs. Wall-clock budgets are **not** rebased —
///   callers chaining epochs subtract elapsed time from `max_time`
///   themselves.
/// * `capture_frontier` — when the epoch stops early (checkpoint pause
///   via [`MonitorConfig::checkpoint_every`], or any stopping rule), the
///   un-done work is returned as the third tuple element: each worker
///   drains its in-progress explorer into descriptors and the pool's
///   queues are drained after the join. An empty frontier means the
///   search space is exhausted. With `capture_frontier: false` early
///   stops discard the frontier (the pre-checkpoint behaviour).
///
/// A paused epoch reports `stop: None` but a non-empty frontier; callers
/// distinguish "complete" from "paused" by the frontier, not the cause.
pub fn run_parallel_epoch<S, F>(
    problem: &StandProblem,
    config: &GentriusConfig,
    pcfg: &ParallelConfig,
    make_sink: F,
    resume: Option<ResumeFrontier>,
    capture_frontier: bool,
) -> Result<(ParallelRunResult, Vec<S>, Vec<Task>), ProblemError>
where
    S: StandSink + Send,
    F: Fn(usize) -> S,
{
    assert!(pcfg.threads >= 1, "need at least one worker thread");
    let initial = problem.initial_tree_index(&config.initial_tree)?;
    // Surface order-rule problems before any thread is spawned (workers
    // construct their states with expect()).
    SearchState::new(problem, initial, &config.taxon_order).map_err(ProblemError::BadTaxonOrder)?;
    let started = Instant::now();

    // Root invariant check (same as the serial driver). A resumed frontier
    // already passed it in the epoch that captured it — and carries real
    // pending work regardless, so it must not be short-circuited.
    let agile0 = &problem.constraints()[initial];
    let mut sinks = Vec::new();
    let mut prefix_sink = make_sink(0);
    if resume.is_none() && problem.constraints().iter().any(|c| !compatible(agile0, c)) {
        sinks.push(prefix_sink);
        return Ok((
            ParallelRunResult {
                stats: RunStats::new(),
                stop: None,
                elapsed: started.elapsed(),
                threads: pcfg.threads,
                initial_tree: initial,
                prefix: RunStats::new(),
                stolen_tasks: 0,
                scheduler: EngineReport::empty(pcfg.threads),
                workers: vec![WorkerReport::default(); pcfg.threads],
                monitor: MonitorReport::default(),
            },
            sinks,
            Vec::new(),
        ));
    }

    let (resume_tasks, base_stats) = match resume {
        Some(f) => (Some(f.tasks), f.base),
        None => (None, RunStats::new()),
    };
    let global = GlobalCounters::with_base(config.stopping.clone(), base_stats);
    // The pool exists for the whole run (even though workers only spawn in
    // phase 3) so the monitor can wake parked threads and sample scheduler
    // state from its very first tick.
    let mut pool = TaskPool::with_seed(pcfg.threads, pcfg.capacity(), pcfg.steal_seed);
    pool.set_adaptive(pcfg.adaptive_split);
    let pool = pool;
    let monitor_shared = pcfg.monitor.as_ref().map(MonitorShared::new);

    let checkpoint_every = pcfg.monitor.as_ref().and_then(|m| m.checkpoint_every);

    // One scope holds the monitor and (later) the workers. Every return
    // path below must call `finish` on the monitor before the scope
    // closes, or the scope would wait on a supervisor that never quits.
    let (result, returned_sinks, frontier) = std::thread::scope(|scope| {
        if let Some(shared) = &monitor_shared {
            spawn_monitor(scope, shared, &global, &pool, started, checkpoint_every);
        }
        // If anything below unwinds (a worker panic propagating through
        // `join().expect`), the monitor must still be told to quit, or the
        // scope's implicit join would hang the unwind forever.
        struct MonitorQuitGuard<'a>(Option<&'a MonitorShared>);
        impl Drop for MonitorQuitGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    if let Some(shared) = self.0 {
                        shared.quit();
                    }
                }
            }
        }
        let _monitor_guard = MonitorQuitGuard(monitor_shared.as_ref());
        let finish_monitor = || match &monitor_shared {
            Some(shared) => shared.finish(&global, &pool, started),
            None => MonitorReport::default(),
        };

        let prefix_stats = if let Some(tasks) = resume_tasks {
            // ----------------------------------------------------------
            // Resume — the frontier descriptors *are* the remaining
            // search space; the serial prefix and the initial split were
            // already performed by the epoch that captured them. Inject
            // everything and go straight to the thread pool.
            // ----------------------------------------------------------
            for task in tasks {
                pool.inject(task);
            }
            RunStats::new()
        } else {
            // ----------------------------------------------------------
            // Phase 1 — serial prefix: identical across all threads (the
            // paper has every thread redo it; we run it once on the main
            // thread and count it once, so totals match the serial run
            // exactly). The monitor already supervises this phase: a
            // wall-clock limit expiring mid-prefix stops it within a
            // tick, and a checkpoint pause ends it via `pool.is_done()`.
            // ----------------------------------------------------------
            let state = new_state(problem, initial, config);
            let mut prefix_ex = Explorer::new_root(state);
            let mut prefix_local = LocalCounters::new(&global, pcfg.flush);
            loop {
                if global.stopped() || pool.is_done() {
                    break;
                }
                if prefix_ex.finished() {
                    break;
                }
                if prefix_ex.top().map(|f| f.pending()).unwrap_or(0) >= 2 {
                    break; // reached the initial-split state I_0
                }
                count_event(prefix_ex.step(&mut prefix_sink), &mut prefix_local);
            }
            let prefix_stats = prefix_local.totals();
            prefix_local.flush();
            drop(prefix_local);

            if prefix_ex.finished() || global.stopped() || pool.is_done() {
                // The whole search (or the stopping budget, or a
                // checkpoint pause) fit in the prefix.
                let frontier = if capture_frontier && !prefix_ex.finished() {
                    prefix_ex
                        .drain_frontier()
                        .into_iter()
                        .map(|(snap, taxon, branches)| Task::new(snap, taxon, branches, 0))
                        .collect()
                } else {
                    Vec::new()
                };
                let monitor = finish_monitor();
                sinks.push(prefix_sink);
                let stats = global.snapshot();
                return (
                    ParallelRunResult {
                        stats,
                        stop: global.stop_cause(),
                        elapsed: started.elapsed(),
                        threads: pcfg.threads,
                        initial_tree: initial,
                        prefix: prefix_stats,
                        stolen_tasks: 0,
                        scheduler: EngineReport::empty(pcfg.threads),
                        workers: vec![WorkerReport::default(); pcfg.threads],
                        monitor,
                    },
                    sinks,
                    frontier,
                );
            }

            // ----------------------------------------------------------
            // Phase 2 — initial split: distribute the admissible branches
            // of I_0's next taxon over the threads as uniformly as
            // possible (Fig. 2a; with fewer branches than threads the
            // surplus threads start parked and are fed by work stealing,
            // the queue-based equivalent of Fig. 2b).
            // ----------------------------------------------------------
            let split_frame = prefix_ex.top().expect("I_0 has a frame");
            let split_taxon = split_frame.taxon;
            let split_branches: Vec<EdgeId> = split_frame.branches[split_frame.cursor..].to_vec();
            // One snapshot of the I_0 state serves every chunk; workers
            // resume it directly instead of replaying the prefix path per
            // task. Every frame below the top is exhausted (the phase-1
            // loop breaks the moment a frame has ≥2 pending), so the
            // snapshot + split branches cover the remaining search space
            // exactly.
            let split_depth = prefix_ex.applied_depth();
            let split_snapshot = prefix_ex.state().snapshot();
            drop(prefix_ex);

            let chunks = partition_branches(&split_branches, pcfg.threads);
            // The initial chunks go through the global injector: any
            // worker may pick one up, surplus workers park until splits
            // reach their deques. (If the monitor already shut the pool
            // down, workers see `done` and exit without touching the
            // injected tasks.)
            for branches in chunks {
                pool.inject(Task::new(
                    split_snapshot.clone(),
                    split_taxon,
                    branches,
                    split_depth,
                ));
            }
            drop(split_snapshot);
            prefix_stats
        };

        // --------------------------------------------------------------
        // Phase 3 — thread pool with per-worker steal deques.
        // --------------------------------------------------------------
        let mut worker_sinks: Vec<Option<S>> =
            (0..pcfg.threads).map(|t| Some(make_sink(1 + t))).collect();
        // Workers get their own (inner) scope so the per-run borrows stay
        // local; the monitor in the outer scope keeps supervising them
        // throughout.
        let results: Vec<(WorkerReport, S, Vec<Task>)> = std::thread::scope(|wscope| {
            let mut handles = Vec::with_capacity(pcfg.threads);
            for (tid, sink_slot) in worker_sinks.iter_mut().enumerate() {
                let sink = sink_slot.take().expect("sink prepared per worker");
                let pool = &pool;
                let global = &global;
                let started_at = started;
                handles.push(wscope.spawn(move || {
                    worker_loop(
                        problem,
                        pcfg,
                        pool.worker(tid),
                        global,
                        sink,
                        started_at,
                        capture_frontier,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let monitor = finish_monitor();

        let sched_counts = pool.scheduler_counts();
        let mut workers = Vec::with_capacity(pcfg.threads);
        let mut frontier = Vec::new();
        sinks.push(prefix_sink);
        for (tid, (mut report, sink, drained)) in results.into_iter().enumerate() {
            report.sched = sched_counts[tid];
            workers.push(report);
            sinks.push(sink);
            frontier.extend(drained);
        }
        if capture_frontier {
            // The workers have joined, so the queues are quiescent: every
            // task still sitting in a deque or the injector is untouched
            // work and joins the frontier verbatim.
            frontier.extend(pool.drain_tasks());
        }

        (
            ParallelRunResult {
                stats: global.snapshot(),
                stop: global.stop_cause(),
                elapsed: started.elapsed(),
                threads: pcfg.threads,
                initial_tree: initial,
                prefix: prefix_stats,
                stolen_tasks: pool.total_submitted(),
                scheduler: EngineReport::from_counts(
                    sched_counts,
                    pool.total_injected() as u64,
                    pool.total_deque_grows(),
                ),
                workers,
                monitor,
            },
            sinks,
            frontier,
        )
    });

    Ok((result, returned_sinks, frontier))
}

fn new_state<'p>(
    problem: &'p StandProblem,
    initial: usize,
    config: &GentriusConfig,
) -> SearchState<'p> {
    let mut state = SearchState::new(problem, initial, &config.taxon_order)
        .expect("validated problem must build a state");
    state.enable_mapping(config.mapping);
    state
}

#[inline]
fn count_event(ev: StepEvent, local: &mut LocalCounters<'_>) {
    match ev {
        StepEvent::Entered => local.intermediate_state(),
        StepEvent::StandTree => local.stand_tree(),
        StepEvent::DeadEnd => {
            local.intermediate_state();
            local.dead_end();
        }
        StepEvent::Backtracked | StepEvent::Finished => {}
    }
}

/// Attempts to carve a task out of the explorer's current state and submit
/// it onto the calling worker's own deque (paper §III-A task-creation
/// conditions: ≥2 pending branches, own deque below capacity, enough
/// remaining taxa to be worth stealing — plus the adaptive granularity
/// gate). The gates are ordered cheapest-first; only once all pass is the
/// O(state) snapshot taken. `base_depth` is the executing task's own
/// snapshot depth, so published depths accumulate along steal chains.
fn maybe_submit(
    ex: &mut Explorer<'_>,
    worker: &WorkerHandle<'_>,
    min_remaining: usize,
    base_depth: usize,
) {
    if ex.remaining_taxa() < min_remaining {
        return;
    }
    if !worker.has_room_hint() {
        return;
    }
    if !worker.split_allowed() {
        return;
    }
    if ex.top().map(|f| f.pending()).unwrap_or(0) < 2 {
        return;
    }
    let Some(branches) = ex.split_top() else {
        return;
    };
    let task = Task::new(
        ex.state().snapshot(),
        ex.top().expect("split implies a frame").taxon,
        branches,
        base_depth + ex.applied_depth(),
    );
    if let Err(task) = worker.try_push(task) {
        // Raced to a full deque (or a stopped pool): keep the branches.
        ex.unsplit_top(task.branches);
    }
}

fn worker_loop<S: StandSink>(
    problem: &StandProblem,
    pcfg: &ParallelConfig,
    worker: WorkerHandle<'_>,
    global: &GlobalCounters,
    mut sink: S,
    started: Instant,
    capture: bool,
) -> (WorkerReport, S, Vec<Task>) {
    // If this worker panics (a bug, not a control path), make sure the
    // rest of the pool is released instead of parking forever.
    struct PanicGuard<'a>(&'a TaskPool);
    impl Drop for PanicGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.shutdown();
            }
        }
    }
    let _guard = PanicGuard(worker.pool());

    let mut local = LocalCounters::new(global, pcfg.flush);
    let mut tasks_executed = 0usize;
    let mut spans: Vec<TaskSpan> = Vec::new();
    let mut frontier: Vec<Task> = Vec::new();
    let stride = pcfg.stop_poll_stride.max(1);

    // Initial chunks arrive through the pool's global injector; everything
    // after that comes off this worker's own deque or is stolen. Each task
    // carries its own resumable state: no shared anchor, no replay, no
    // unwind — the explorer is simply dropped when the task finishes.
    while let Some(task) = worker.next_task() {
        tasks_executed += 1;
        let span_start = pcfg.trace.then(|| started.elapsed().as_secs_f64());
        let snapshot_depth = task.depth;
        let state = SearchState::resume(problem, task.snapshot);
        let mut ex = if task.branches.is_empty() {
            // The synthetic complete-state descriptor (a paused epoch's
            // root-complete marker): the snapshot *is* a stand tree that
            // was captured before being emitted. `new_root` re-arms the
            // root-complete path so the next step emits it exactly once.
            Explorer::new_root(state)
        } else {
            let mut ex = Explorer::new_idle(state);
            ex.resume_task(task.taxon, task.branches);
            ex
        };
        // The received frame itself may be splittable (Fig. 2b's group
        // separation happens via the scheduler).
        maybe_submit(
            &mut ex,
            &worker,
            pcfg.min_remaining_for_split,
            snapshot_depth,
        );
        let mut until_poll = 1usize;
        loop {
            until_poll -= 1;
            if until_poll == 0 {
                until_poll = stride;
                // `is_done` catches a checkpoint pause, which quiesces the
                // pool without raising the global stop (no rule fired).
                if global.stopped() || worker.pool().is_done() {
                    break;
                }
            }
            let ev = ex.step(&mut sink);
            if ev == StepEvent::Finished {
                break;
            }
            count_event(ev, &mut local);
            if ev == StepEvent::Entered {
                maybe_submit(
                    &mut ex,
                    &worker,
                    pcfg.min_remaining_for_split,
                    snapshot_depth,
                );
            }
        }
        if let Some(start) = span_start {
            spans.push(TaskSpan {
                start,
                end: started.elapsed().as_secs_f64(),
                snapshot_depth,
            });
        }
        if global.stopped() || worker.pool().is_done() {
            if capture {
                // Turn whatever this task had left into descriptors so a
                // checkpoint can carry it (a no-op if the explorer just
                // finished). Counters stay exact: drained work was never
                // counted, resumed work will be.
                frontier.extend(
                    ex.drain_frontier()
                        .into_iter()
                        .map(|(snap, taxon, branches)| {
                            Task::new(snap, taxon, branches, snapshot_depth)
                        }),
                );
            }
            worker.task_done();
            worker.pool().shutdown();
            break;
        }
        worker.task_done();
    }

    let totals = local.totals();
    local.flush();
    (
        WorkerReport {
            tasks_executed,
            stats: totals,
            sched: SchedulerCounts::default(), // filled in by the engine
            spans,
        },
        sink,
        frontier,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gentrius_core::driver::run_serial;
    use gentrius_core::sink::CountOnly;
    use phylo::newick::parse_forest;

    fn problem(newicks: &[&str]) -> StandProblem {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    fn exhaustive() -> GentriusConfig {
        GentriusConfig::exhaustive()
    }

    #[test]
    fn parallel_equals_serial_counts() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let serial = run_serial(&p, &exhaustive(), &mut CountOnly).unwrap();
        for threads in [1, 2, 3, 4] {
            let r =
                run_parallel(&p, &exhaustive(), &ParallelConfig::with_threads(threads)).unwrap();
            assert!(r.complete());
            assert_eq!(r.stats, serial.stats, "threads={threads}");
        }
    }

    #[test]
    fn worker_reports_partition_the_work() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let r = run_parallel(&p, &exhaustive(), &ParallelConfig::with_threads(3)).unwrap();
        let mut merged = r.prefix;
        for w in &r.workers {
            merged.merge(&w.stats);
        }
        assert_eq!(merged, r.stats);
        let total_tasks: usize = r.workers.iter().map(|w| w.tasks_executed).sum();
        assert!(total_tasks >= 1);
    }

    #[test]
    fn incompatible_input_returns_empty() {
        let p = problem(&["((A,B),(C,D));", "((A,C),(B,D));"]);
        let r = run_parallel(&p, &exhaustive(), &ParallelConfig::with_threads(2)).unwrap();
        assert_eq!(r.stats.stand_trees, 0);
        assert!(r.complete());
    }

    #[test]
    fn stand_tree_limit_stops_parallel_run() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let full = run_parallel(&p, &exhaustive(), &ParallelConfig::with_threads(2)).unwrap();
        assert!(full.stats.stand_trees > 50);
        let cfg = GentriusConfig {
            stopping: gentrius_core::StoppingRules::counts(50, u64::MAX),
            ..GentriusConfig::default()
        };
        let mut pcfg = ParallelConfig::with_threads(2);
        pcfg.flush = FlushThresholds::unbatched();
        let r = run_parallel(&p, &cfg, &pcfg).unwrap();
        assert_eq!(r.stop, Some(StopCause::StandTreeLimit));
        assert!(r.stats.stand_trees >= 50);
        assert!(r.stats.stand_trees < full.stats.stand_trees);
    }

    #[test]
    fn batched_counters_may_overshoot_but_totals_are_exact() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let cfg = GentriusConfig {
            stopping: gentrius_core::StoppingRules::counts(10, u64::MAX),
            ..GentriusConfig::default()
        };
        let mut pcfg = ParallelConfig::with_threads(2);
        pcfg.flush = FlushThresholds {
            stand_trees: 64,
            intermediate_states: 64,
            dead_ends: 64,
        };
        let r = run_parallel(&p, &cfg, &pcfg).unwrap();
        assert_eq!(r.stop, Some(StopCause::StandTreeLimit));
        // Overshoot is bounded by one batch per context.
        assert!(r.stats.stand_trees >= 10);
        assert!(r.stats.stand_trees <= 10 + 64 * 3);
    }

    #[test]
    fn traced_spans_cover_the_work() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let mut pcfg = ParallelConfig::with_threads(3);
        pcfg.trace = true;
        let r = run_parallel(&p, &exhaustive(), &pcfg).unwrap();
        let elapsed = r.elapsed.as_secs_f64();
        let mut total_spans = 0;
        for w in &r.workers {
            assert_eq!(w.spans.len(), w.tasks_executed);
            for s in &w.spans {
                assert!(s.start <= s.end);
                assert!(s.end <= elapsed + 1e-3);
            }
            for pair in w.spans.windows(2) {
                assert!(pair[0].end <= pair[1].start + 1e-6, "overlapping spans");
            }
            total_spans += w.spans.len();
        }
        assert!(total_spans >= 1);
        // Untraced runs record nothing.
        let r2 = run_parallel(&p, &exhaustive(), &ParallelConfig::with_threads(3)).unwrap();
        assert!(r2.workers.iter().all(|w| w.spans.is_empty()));
    }

    #[test]
    fn queue_capacity_override() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let mut pcfg = ParallelConfig::with_threads(2);
        pcfg.queue_capacity = Some(1);
        let serial = run_serial(&p, &exhaustive(), &mut CountOnly).unwrap();
        let r = run_parallel(&p, &exhaustive(), &pcfg).unwrap();
        assert_eq!(r.stats, serial.stats);
    }
}
