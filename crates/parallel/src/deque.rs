//! A lock-free Chase–Lev work-stealing deque.
//!
//! This is the dynamic circular work-stealing deque of Chase & Lev
//! (SPAA 2005), with the memory orderings of the C11 formulation by
//! Lê, Pop, Cohen & Zappa Nardelli ("Correct and efficient work-stealing
//! for weak memory models", PPoPP 2013). The owner pushes and pops at the
//! *bottom* (LIFO — depth-first descent stays hot in cache and keeps the
//! shallowest, largest subproblems at the top), while thieves steal from
//! the *top* (FIFO — a thief takes the oldest and therefore biggest
//! pending split, exactly the granularity rule §III-A wants).
//!
//! Items are boxed and stored as raw pointers so that buffer slots are
//! plain machine words: the benign data race of the original algorithm
//! (a stale thief may read a slot that the CAS on `top` then disowns)
//! only ever involves copying a pointer, never tearing a `Task`.
//!
//! # Ownership contract
//!
//! [`StealDeque::push`] and [`StealDeque::pop`] must only be called by
//! the single owner of the deque; [`StealDeque::steal`], [`StealDeque::len`]
//! and [`StealDeque::is_empty`] are safe from any thread. The pool layer
//! (`pool.rs`) enforces single ownership at runtime by checking workers
//! out through [`crate::pool::WorkerHandle`].

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// One growable ring buffer generation.
struct Buffer<T> {
    /// Power-of-two capacity.
    cap: usize,
    /// Slots hold raw boxed items; atomics so the benign racy reads of the
    /// algorithm are well-defined (all slot accesses are `Relaxed`).
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { cap, slots })
    }

    #[inline]
    fn get(&self, i: isize) -> *mut T {
        self.slots[i as usize & (self.cap - 1)].load(Ordering::Relaxed)
    }

    #[inline]
    fn put(&self, i: isize, p: *mut T) {
        self.slots[i as usize & (self.cap - 1)].store(p, Ordering::Relaxed);
    }
}

/// Result of a steal attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque had no stealable item.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Took the oldest item.
    Success(T),
}

impl<T> Steal<T> {
    /// True for [`Steal::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

/// The work-stealing deque. See the module docs for the algorithm and the
/// owner/thief contract.
pub struct StealDeque<T> {
    /// Steal end. Only ever incremented, by a successful CAS.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it.
    bottom: AtomicIsize,
    /// Current buffer generation.
    buffer: AtomicPtr<Buffer<T>>,
    /// Outgrown buffers. They may still be read by in-flight thieves that
    /// loaded the pointer before a grow, so they are only freed on drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// The deque hands `T` across threads (owner pushes, thief receives).
unsafe impl<T: Send> Send for StealDeque<T> {}
unsafe impl<T: Send> Sync for StealDeque<T> {}

impl<T> StealDeque<T> {
    /// An empty deque whose first buffer holds at least `min_cap` items
    /// (it grows beyond that transparently).
    pub fn with_min_capacity(min_cap: usize) -> Self {
        let cap = min_cap.next_power_of_two().max(8);
        StealDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Number of items currently in the deque. Computed from two
    /// independent atomic loads, so under concurrent mutation it is a
    /// point-in-time approximation — exact when the deque is quiescent,
    /// which is all the capacity hint and the termination check need.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when [`StealDeque::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: pushes an item at the bottom.
    pub fn push(&self, item: T) {
        let p = Box::into_raw(Box::new(item));
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap as isize {
            self.grow(t, b);
            buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        }
        buf.put(b, p);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner-only: pops the most recently pushed item (LIFO).
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty.
            let p = buf.get(b);
            if t == b {
                // Last item: race the thieves for it via `top`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None; // a thief got it
                }
            }
            Some(unsafe { *Box::from_raw(p) })
        } else {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: tries to steal the oldest item (FIFO).
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
            let p = buf.get(t);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry; // owner or another thief won
            }
            Steal::Success(unsafe { *Box::from_raw(p) })
        } else {
            Steal::Empty
        }
    }

    /// Doubles the buffer, copying the live window `t..b`. Owner-only,
    /// called from `push`. The old buffer is retired, not freed: a thief
    /// that loaded it before the swap may still read (stale but identical)
    /// slots from it.
    fn grow(&self, t: isize, b: isize) {
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        let old = unsafe { &*old_ptr };
        let new = Buffer::new(old.cap * 2);
        for i in t..b {
            new.put(i, old.get(i));
        }
        self.buffer.store(Box::into_raw(new), Ordering::Release);
        self.retired.lock().unwrap().push(old_ptr);
    }
}

impl<T> Drop for StealDeque<T> {
    fn drop(&mut self) {
        // Exclusive access: drain remaining items, then free all buffers.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        for i in t..b {
            drop(unsafe { Box::from_raw(buf.get(i)) });
        }
        drop(unsafe { Box::from_raw(self.buffer.load(Ordering::Relaxed)) });
        for p in self.retired.lock().unwrap().drain(..) {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = StealDeque::with_min_capacity(4);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        // Thief takes the oldest…
        match d.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            other => panic!("expected success, got {other:?}"),
        }
        // …owner pops the newest.
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = StealDeque::with_min_capacity(2);
        for i in 0..100 {
            d.push(i);
        }
        assert_eq!(d.len(), 100);
        for i in (0..100).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn drop_frees_unclaimed_items() {
        // Leak-checks indirectly: Box<Vec> contents must be dropped.
        let d = StealDeque::with_min_capacity(4);
        d.push(vec![1u8; 1024]);
        d.push(vec![2u8; 1024]);
        drop(d); // must not leak or double-free (asserted by miri/asan runs)
    }

    #[test]
    fn concurrent_steals_take_each_item_once() {
        const ITEMS: usize = 10_000;
        const THIEVES: usize = 4;
        let d = StealDeque::with_min_capacity(64);
        let seen = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let d = &d;
            let seen = &seen;
            let done = &done;
            // Owner interleaves pushes and pops, then drains.
            s.spawn(move || {
                for i in 0..ITEMS {
                    d.push(i);
                    if i % 3 == 0 {
                        if let Some(v) = d.pop() {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                while let Some(v) = d.pop() {
                    seen[v].fetch_add(1, Ordering::Relaxed);
                }
                // The drain loop only ends on an empty deque (a lost
                // last-item race means a thief holds that item).
                done.store(true, Ordering::SeqCst);
            });
            for _ in 0..THIEVES {
                s.spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) && d.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        for (i, c) in seen.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            assert_eq!(n, 1, "item {i} executed {n} times");
        }
    }
}
