//! A lock-free Chase–Lev work-stealing deque.
//!
//! This is the dynamic circular work-stealing deque of Chase & Lev
//! (SPAA 2005), with the memory orderings of the C11 formulation by
//! Lê, Pop, Cohen & Zappa Nardelli ("Correct and efficient work-stealing
//! for weak memory models", PPoPP 2013). The owner pushes and pops at the
//! *bottom* (LIFO — depth-first descent stays hot in cache and keeps the
//! shallowest, largest subproblems at the top), while thieves steal from
//! the *top* (FIFO — a thief takes the oldest and therefore biggest
//! pending split, exactly the granularity rule §III-A wants).
//!
//! Items are boxed and stored as raw pointers so that buffer slots are
//! plain machine words: the benign data race of the original algorithm
//! (a stale thief may read a slot that the CAS on `top` then disowns)
//! only ever involves copying a pointer, never tearing a `Task`.
//!
//! The full ordering argument (which fences pair with which loads, why
//! [`StealDeque::len`] may be stale, and why retired-buffer reclamation is
//! safe) lives in DESIGN.md §"Memory model"; the `loom` suite
//! (`tests/loom_deque.rs`), Miri, and TSan check it mechanically.
//!
//! # Ownership contract
//!
//! [`StealDeque::push`] and [`StealDeque::pop`] must only be called by
//! the single owner of the deque; [`StealDeque::steal`], [`StealDeque::len`]
//! and [`StealDeque::is_empty`] are safe from any thread. The pool layer
//! (`pool.rs`) enforces single ownership at runtime by checking workers
//! out through [`crate::pool::WorkerHandle`].

use crate::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;

/// One growable ring buffer generation.
struct Buffer<T> {
    /// Power-of-two capacity.
    cap: usize,
    /// Slots hold raw boxed items; atomics so the benign racy reads of the
    /// algorithm are well-defined (all slot accesses are `Relaxed`).
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { cap, slots })
    }

    #[inline]
    fn get(&self, i: isize) -> *mut T {
        // ordering: Relaxed — slot reads are the benign race of Chase–Lev;
        // visibility is carried by the fences/CAS on `top` and `bottom`.
        self.slots[i as usize & (self.cap - 1)].load(Ordering::Relaxed)
    }

    #[inline]
    fn put(&self, i: isize, p: *mut T) {
        // ordering: Relaxed — the Release fence in `push` (and the SeqCst
        // buffer swap in `grow`) publishes slot writes before they matter.
        self.slots[i as usize & (self.cap - 1)].store(p, Ordering::Relaxed);
    }
}

/// Result of a steal attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque had no stealable item.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Took the oldest item.
    Success(T),
}

impl<T> Steal<T> {
    /// True for [`Steal::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

/// The work-stealing deque. See the module docs for the algorithm and the
/// owner/thief contract.
pub struct StealDeque<T> {
    /// Steal end. Only ever incremented, by a successful CAS.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it.
    bottom: AtomicIsize,
    /// Current buffer generation.
    buffer: AtomicPtr<Buffer<T>>,
    /// Outgrown buffers. They may still be read by in-flight thieves that
    /// loaded the pointer before a grow, so the owner frees them only at a
    /// provably quiescent point — see [`StealDeque::try_reclaim`].
    retired: Mutex<Vec<*mut Buffer<T>>>,
    /// Lock-free mirror of `retired.len()`, so the owner's hot paths can
    /// skip the lock when nothing is pending reclamation.
    retired_len: AtomicUsize,
    /// Thief latch: the number of [`StealDeque::steal`] calls currently
    /// between their buffer load and their CAS. Reclamation requires this
    /// to read zero *after* the buffer swap (SeqCst on both sides), which
    /// proves no thief can still hold a retired buffer pointer.
    steals_in_flight: AtomicUsize,
    /// Diagnostic: times the buffer grew (read by the pool's report; not
    /// part of the synchronization protocol, but routed through the
    /// facade so the loom models see it — `tests/loom_deque.rs` asserts
    /// the counter is coherent with the grows a schedule performed).
    grows: AtomicU64,
}

// safety: the deque hands `T` across threads (owner pushes, thief
// receives), which is exactly `T: Send`; all shared internals are atomics
// or mutex-protected, so `&StealDeque` is safe to share.
unsafe impl<T: Send> Send for StealDeque<T> {}
unsafe impl<T: Send> Sync for StealDeque<T> {}

impl<T> StealDeque<T> {
    /// An empty deque whose first buffer holds at least `min_cap` items
    /// (it grows beyond that transparently).
    pub fn with_min_capacity(min_cap: usize) -> Self {
        let cap = min_cap.next_power_of_two().max(2);
        StealDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
            retired: Mutex::new(Vec::new()),
            retired_len: AtomicUsize::new(0),
            steals_in_flight: AtomicUsize::new(0),
            grows: AtomicU64::new(0),
        }
    }

    /// Number of items currently in the deque. Computed from two
    /// independent atomic loads, so under concurrent mutation it is a
    /// point-in-time approximation — exact when the deque is quiescent,
    /// which is all the capacity hint and the termination check need.
    pub fn len(&self) -> usize {
        // ordering: SeqCst — the pool's termination check compares len()
        // across deques; both loads join the single total order so a task
        // published before the check cannot be missed by every observer.
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when [`StealDeque::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retired buffer generations not yet reclaimed (diagnostics/tests).
    pub fn retired_buffers(&self) -> usize {
        // ordering: SeqCst — mirrors the stores in `grow`/`try_reclaim` so
        // tests asserting on reclamation observe the post-swap value.
        self.retired_len.load(Ordering::SeqCst)
    }

    /// Times the buffer has grown over the deque's lifetime.
    pub fn grow_count(&self) -> u64 {
        // ordering: Relaxed — monotonic diagnostic counter; readers only
        // need an eventually-consistent tally, never an edge.
        self.grows.load(Ordering::Relaxed)
    }

    /// Owner-only: pushes an item at the bottom.
    pub fn push(&self, item: T) {
        let p = Box::into_raw(Box::new(item));
        // ordering: Relaxed — `bottom` is owner-written and push runs on
        // the owner thread, so this load reads-own-writes.
        let b = self.bottom.load(Ordering::Relaxed);
        // ordering: Acquire — pairs with the thieves' SeqCst CAS on `top`
        // so the capacity check never under-counts already-stolen slots.
        let t = self.top.load(Ordering::Acquire);
        // ordering: Relaxed — `buffer` is owner-written (read-own-writes).
        // safety: the pointer is valid — it is only replaced by the owner
        // in `grow`, and retirees are freed only after thief quiescence.
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap as isize {
            self.grow(t, b);
            // ordering: Relaxed — re-reading the owner's own swap above.
            // safety: same pointer-validity argument as the load above.
            buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        }
        buf.put(b, p);
        // ordering: Release fence — orders the slot write above before the
        // publish of the new `bottom` below (PPoPP'13 §4).
        fence(Ordering::Release);
        // ordering: Relaxed — the Release fence directly above already
        // orders the slot write before this `bottom` publish.
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner-only: pops the most recently pushed item (LIFO).
    pub fn pop(&self) -> Option<T> {
        // ordering: Relaxed — owner-written cells read on the owner thread;
        // the decrement of `bottom` is published by the SeqCst fence below.
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // ordering: Relaxed — owner-only buffer load and `bottom` store;
        // the decrement is published by the SeqCst fence below.
        // safety: the buffer pointer the owner loads is the one it last
        // installed and stays live until it retires it.
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // ordering: SeqCst — the fence pairs with the one in `steal_inner`:
        // either the thief sees the decremented `bottom` or the owner sees
        // the thief's `top` increment; both missing is impossible.
        fence(Ordering::SeqCst);
        // ordering: Relaxed — ordered by the SeqCst fence directly above.
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty.
            let p = buf.get(b);
            if t == b {
                // Last item: race the thieves for it via `top`.
                // ordering: SeqCst success — the last-item CAS must join
                // the same total order as the thief's CAS so exactly one
                // side wins; Relaxed failure — losing needs no edge, the
                // item is simply conceded to the thief.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                // ordering: Relaxed — owner-only restore of `bottom`; the
                // next synchronizing op orders it for thieves.
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None; // a thief got it
                }
            }
            // safety: exactly one side takes index `b` — thieves CAS `top`
            // past it or the owner won the last-item CAS above; `p` was
            // created by `Box::into_raw` in `push`.
            Some(unsafe { *Box::from_raw(p) })
        } else {
            // Already empty; restore bottom. An empty deque is a cheap
            // quiescent point to reclaim superseded buffers at.
            // ordering: Relaxed — as above; SeqCst on `retired_len` mirrors
            // the stores in `grow`/`try_reclaim` for the quiescence check.
            self.bottom.store(b + 1, Ordering::Relaxed);
            if self.retired_len.load(Ordering::SeqCst) > 0 {
                self.try_reclaim();
            }
            None
        }
    }

    /// Any thread: tries to steal the oldest item (FIFO).
    pub fn steal(&self) -> Steal<T> {
        // ordering: SeqCst — latch opens *before* the buffer pointer is
        // loaded: the owner only frees retired buffers after observing the
        // latch at zero, and the SeqCst total order then guarantees any
        // later thief sees the post-swap buffer pointer (DESIGN.md
        // §"Memory model"); the decrement closes the same latch.
        self.steals_in_flight.fetch_add(1, Ordering::SeqCst);
        let r = self.steal_inner();
        self.steals_in_flight.fetch_sub(1, Ordering::SeqCst);
        r
    }

    fn steal_inner(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // ordering: SeqCst — pairs with the fence in `pop` (see there).
        fence(Ordering::SeqCst);
        // ordering: Acquire — observes the owner's fence-ordered `bottom`
        // publish so the emptiness check sees the pushed slot.
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            // ordering: SeqCst — the buffer load must be ordered after the
            // latch increment in `steal` for the reclamation proof.
            // safety: the latch is open, so this pointer — even one retired
            // by a concurrent `grow` — is not freed until we decrement.
            let buf = unsafe { &*self.buffer.load(Ordering::SeqCst) };
            let p = buf.get(t);
            // ordering: SeqCst success — single total order with the
            // owner's last-item CAS decides who takes the item; Relaxed
            // failure — a lost race needs no edge, we just retry.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry; // owner or another thief won
            }
            // safety: the CAS succeeded, so this thief owns index `t`
            // exclusively; `p` was created by `Box::into_raw` in `push`.
            Steal::Success(unsafe { *Box::from_raw(p) })
        } else {
            Steal::Empty
        }
    }

    /// Doubles the buffer, copying the live window `t..b`. Owner-only,
    /// called from `push`. The old buffer is retired, not freed: a thief
    /// that loaded it before the swap may still read (stale but identical)
    /// slots from it. Earlier retirees are reclaimed here when quiescent.
    fn grow(&self, t: isize, b: isize) {
        // ordering: Relaxed — owner reads its own buffer pointer.
        // safety: `grow` is owner-only and the pointer it reads stays
        // valid until retired *and* reclaimed, which cannot happen while
        // the owner itself is still inside `grow`.
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        let old = unsafe { &*old_ptr };
        let new = Buffer::new(old.cap * 2);
        for i in t..b {
            new.put(i, old.get(i));
        }
        // ordering: SeqCst — the swap must be globally ordered against the
        // thief latch; Release alone would publish the copied slots but not
        // support the reclamation argument below. Same for `retired_len`,
        // which the quiescence checks read with SeqCst.
        self.buffer.store(Box::into_raw(new), Ordering::SeqCst);
        {
            let mut retired = self.retired.lock().unwrap();
            retired.push(old_ptr);
            // ordering: SeqCst — see the swap comment above.
            self.retired_len.store(retired.len(), Ordering::SeqCst);
        }
        // ordering: Relaxed — monotonic diagnostic counter (see
        // `grow_count`); no reader depends on it for synchronization.
        self.grows.fetch_add(1, Ordering::Relaxed);
        self.try_reclaim();
    }

    /// Owner-only: frees retired buffers if no steal is in flight.
    ///
    /// Safety argument (SC-fragment reasoning over the SeqCst operations;
    /// spelled out in DESIGN.md): every retired buffer was swapped out by a
    /// SeqCst store S that precedes this SeqCst load L of the latch. A
    /// thief holds a buffer pointer only between its latch increment A and
    /// decrement, and loads the pointer (SeqCst) after A. If L reads zero,
    /// every such A is ordered after L in the SeqCst total order, so the
    /// thief's buffer load is ordered after S and returns the *new*
    /// pointer — no thief can still reference a buffer retired before L.
    fn try_reclaim(&self) {
        // ordering: SeqCst — load L of the latch in the safety argument
        // above; must join the total order with the swap S and latch
        // increments A, or the proof does not hold.
        if self.steals_in_flight.load(Ordering::SeqCst) != 0 {
            return;
        }
        let mut retired = self.retired.lock().unwrap();
        for p in retired.drain(..) {
            // safety: the latch read zero after every retiring swap, so no
            // thief still holds `p` (see the safety argument above) and
            // each retiree is dropped exactly once (drain moves it out).
            drop(unsafe { Box::from_raw(p) });
        }
        // ordering: SeqCst — mirrors the store in `grow` so the skip-check
        // in `pop` cannot miss a pending retiree forever.
        self.retired_len.store(0, Ordering::SeqCst);
    }
}

impl<T> Drop for StealDeque<T> {
    fn drop(&mut self) {
        // Exclusive access: drain remaining items, then free all buffers.
        // ordering: Relaxed — `&mut self` proves no other thread exists;
        // any prior cross-thread edge happened at the join/handoff.
        // safety: the same exclusivity means no thief holds any pointer.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        for i in t..b {
            // safety: slots `t..b` hold live owner-pushed boxes, each
            // dropped exactly once here.
            drop(unsafe { Box::from_raw(buf.get(i)) });
        }
        // ordering: Relaxed — same exclusive-access argument as above.
        // safety: the current buffer and every retiree are uniquely owned
        // at drop; retiring moved the pointers, so no double-free.
        drop(unsafe { Box::from_raw(self.buffer.load(Ordering::Relaxed)) });
        for p in self.retired.lock().unwrap().drain(..) {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = StealDeque::with_min_capacity(4);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        // Thief takes the oldest…
        match d.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            other => panic!("expected success, got {other:?}"),
        }
        // …owner pops the newest.
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = StealDeque::with_min_capacity(2);
        for i in 0..100 {
            d.push(i);
        }
        assert_eq!(d.len(), 100);
        assert!(d.grow_count() >= 5, "2 → 128 takes at least 6 doublings");
        for i in (0..100).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn retired_buffers_are_reclaimed_at_quiescence() {
        // Regression: retired grow buffers used to accumulate until Drop,
        // leaking every superseded generation for a long-lived worker.
        let d = StealDeque::with_min_capacity(2);
        for i in 0..64 {
            d.push(i);
        }
        assert!(d.grow_count() >= 5);
        // No thief has ever touched this deque, so every grow reclaims its
        // predecessors immediately: at most the latest retiree remains,
        // and it is freed by the next quiescent point.
        assert!(
            d.retired_buffers() <= 1,
            "retired buffers piled up: {}",
            d.retired_buffers()
        );
        while d.pop().is_some() {}
        d.pop(); // empty-deque quiescent point triggers reclamation
        assert_eq!(d.retired_buffers(), 0, "quiescent deque kept retirees");
    }

    #[test]
    fn drop_frees_unclaimed_items() {
        // Leak-checks indirectly: Box<Vec> contents must be dropped.
        let d = StealDeque::with_min_capacity(4);
        d.push(vec![1u8; 1024]);
        d.push(vec![2u8; 1024]);
        drop(d); // must not leak or double-free (asserted by miri/asan runs)
    }

    /// Small enough for Miri to run in CI: exercises the grow-under-steal
    /// path and the raw-pointer slot lifecycle with concurrency.
    #[test]
    fn churned_grow_under_concurrent_steals_is_exact() {
        const ITEMS: usize = 64;
        let d = StealDeque::with_min_capacity(2);
        let seen = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let d = &d;
            let seen = &seen;
            let done = &done;
            s.spawn(move || {
                for i in 0..ITEMS {
                    d.push(i);
                    if i % 5 == 0 {
                        if let Some(v) = d.pop() {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                while let Some(v) = d.pop() {
                    seen[v].fetch_add(1, Ordering::Relaxed);
                }
                done.store(true, Ordering::SeqCst);
            });
            for _ in 0..2 {
                s.spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) && d.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert!(d.grow_count() >= 1, "tiny initial buffer never grew");
        for (i, c) in seen.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            assert_eq!(n, 1, "item {i} executed {n} times");
        }
        d.pop();
        assert_eq!(d.retired_buffers(), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // covered by the smaller churn test above
    fn concurrent_steals_take_each_item_once() {
        const ITEMS: usize = 10_000;
        const THIEVES: usize = 4;
        let d = StealDeque::with_min_capacity(64);
        let seen = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let d = &d;
            let seen = &seen;
            let done = &done;
            // Owner interleaves pushes and pops, then drains.
            s.spawn(move || {
                for i in 0..ITEMS {
                    d.push(i);
                    if i % 3 == 0 {
                        if let Some(v) = d.pop() {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                while let Some(v) = d.pop() {
                    seen[v].fetch_add(1, Ordering::Relaxed);
                }
                // The drain loop only ends on an empty deque (a lost
                // last-item race means a thief holds that item).
                done.store(true, Ordering::SeqCst);
            });
            for _ in 0..THIEVES {
                s.spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) && d.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        for (i, c) in seen.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            assert_eq!(n, 1, "item {i} executed {n} times");
        }
    }
}
