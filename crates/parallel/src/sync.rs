//! Synchronization facade: `std::sync` in normal builds, `loom` under
//! model checking.
//!
//! Every synchronization primitive the scheduler's *protocol* relies on —
//! the deque's `top`/`bottom`/`buffer` atomics, the counters' stop flag,
//! the pool's in-flight count, injector mutex and park condvar — is
//! imported through this module. A normal build re-exports `std::sync`
//! unchanged (zero cost: the re-exports inline away). Building with
//! `RUSTFLAGS="--cfg loom"` swaps in the loom model checker, whose
//! primitives are scheduler yield points, so `cargo test --cfg loom` can
//! exhaustively explore interleavings (bounded preemptions; see
//! `shims/loom`).
//!
//! Diagnostic state — steal/park statistics, victim-selection RNG cells,
//! submitted/injected tallies, the deque grow counter — also routes
//! through the facade. It costs a few extra loom yield points, but it
//! means *no* atomic in the scheduler is invisible to the model (the
//! `xlint` sync-facade rule enforces this mechanically), and the grow
//! counter can be asserted coherent in `tests/loom_deque.rs`.

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Atomic types and fences (`loom`-swappable).
pub mod atomic {
    #[cfg(loom)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Spin-loop hint (a scheduler yield point under loom).
pub mod hint {
    #[cfg(loom)]
    pub use loom::hint::spin_loop;

    #[cfg(not(loom))]
    pub use std::hint::spin_loop;
}
