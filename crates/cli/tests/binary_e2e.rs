//! True end-to-end tests: drive the compiled `gentrius` binary through a
//! realistic session — generate a dataset, enumerate its stand serially
//! and in parallel, extract induced trees, run the consensus and the
//! engine verification — checking observable behaviour only (stdout, exit
//! codes, files).

use std::path::PathBuf;
use std::process::Command;

fn gentrius() -> Command {
    // Cargo builds and exposes the package's binaries to its integration
    // tests via CARGO_BIN_EXE_<name>.
    Command::new(env!("CARGO_BIN_EXE_gentrius"))
}

fn run_ok(args: &[&str]) -> String {
    let out = gentrius().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "gentrius {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gentrius-e2e");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

#[test]
fn full_session() {
    // 1. Generate a dataset.
    let ds = tmp("session.dataset");
    let msg = run_ok(&[
        "gen",
        "--kind",
        "sim",
        "--seed",
        "11",
        "--index",
        "2",
        "--output",
        ds.to_str().unwrap(),
    ]);
    assert!(msg.contains("wrote sim-data-2"), "{msg}");

    // 2. Serial stand enumeration with bounded rules.
    let serial = run_ok(&[
        "stand",
        "--dataset",
        ds.to_str().unwrap(),
        "--max-trees",
        "200000",
        "--max-states",
        "500000",
    ]);
    let grab = |out: &str, key: &str| -> String {
        out.lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("missing '{key}' in {out}"))
            .to_string()
    };
    let serial_trees = grab(&serial, "stand trees:");

    // 3. Parallel run must report the same count.
    let par = run_ok(&[
        "stand",
        "--dataset",
        ds.to_str().unwrap(),
        "--threads",
        "2",
        "--max-trees",
        "200000",
        "--max-states",
        "500000",
    ]);
    assert_eq!(serial_trees, grab(&par, "stand trees:"));

    // 4. Write the stand to a file and re-load it as constraints — the
    //    stand of a single complete tree is itself.
    let trees_out = tmp("stand.nwk");
    let _ = run_ok(&[
        "stand",
        "--dataset",
        ds.to_str().unwrap(),
        "--max-trees",
        "200000",
        "--max-states",
        "500000",
        "--output",
        trees_out.to_str().unwrap(),
    ]);
    let content = std::fs::read_to_string(&trees_out).expect("stand file");
    assert!(content.lines().filter(|l| l.ends_with(';')).count() >= 1);

    // 5. Engine verification on a small instance.
    let small = tmp("small.nwk");
    std::fs::write(&small, "((A,B),(C,D));\n((C,D),(E,F));\n").unwrap();
    let verify = run_ok(&["verify", "--trees", small.to_str().unwrap()]);
    assert!(verify.contains("verdict: PASS"), "{verify}");

    // 6. Consensus on the same instance.
    let cons = run_ok(&["consensus", "--trees", small.to_str().unwrap()]);
    assert!(cons.contains("majority consensus:"), "{cons}");

    // 7. Virtual-time speedup table.
    let sim = run_ok(&[
        "sim",
        "--trees",
        small.to_str().unwrap(),
        "--threads",
        "1,2,4",
    ]);
    assert!(sim.lines().count() >= 5, "{sim}");
}

#[test]
fn error_paths_exit_nonzero() {
    let out = gentrius()
        .args(["stand", "--trees", "/nonexistent/file.nwk"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    let out = gentrius().args(["frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
}

/// `stand cat FILE.stand | head -1` must exit 0: head closes the pipe
/// after one line and the resulting EPIPE is an everyday shell idiom,
/// not an error. The container is large enough (>64 KiB of newick) that
/// the write genuinely hits a closed pipe.
#[cfg(unix)]
#[test]
fn stand_cat_piped_into_head_exits_zero() {
    let trees = tmp("epipe.nwk");
    std::fs::write(&trees, "((A,B),(C,D));\n((A,E),(F,G));\n((C,F),(H,I));\n").unwrap();
    let cont = tmp("epipe.stand");
    run_ok(&[
        "stand",
        "--trees",
        trees.to_str().unwrap(),
        "--output",
        cont.to_str().unwrap(),
    ]);
    assert!(
        std::fs::metadata(&cont).unwrap().len() > 0,
        "container written"
    );
    // pipefail makes head's partner's exit code the pipeline's verdict.
    let out = Command::new("bash")
        .arg("-c")
        .arg(format!(
            "set -o pipefail; {} stand cat {} | head -1",
            env!("CARGO_BIN_EXE_gentrius"),
            cont.to_str().unwrap()
        ))
        .output()
        .expect("bash runs");
    assert!(
        out.status.success(),
        "pipeline failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    assert!(stdout.trim_end().ends_with(';'), "{stdout}");
}

/// Kill/resume across a real process boundary: SIGKILL a checkpointed
/// run mid-flight, then `stand resume` until the checkpoint retires and
/// compare the stitched container against an uninterrupted run's.
#[cfg(unix)]
#[test]
fn sigkill_mid_run_then_resume_matches_clean_run() {
    let trees = tmp("kill.nwk");
    // ~0.8 s (debug) with container output: long enough to kill at
    // ~0.3 s, short enough that resuming completes quickly.
    std::fs::write(
        &trees,
        "((A,B),(C,D));\n((A,E),(F,G));\n((C,F),(H,I));\n((B,I),(E,J));\n",
    )
    .unwrap();
    let clean = tmp("kill-clean.stand");
    run_ok(&[
        "stand",
        "--trees",
        trees.to_str().unwrap(),
        "--threads",
        "2",
        "--output",
        clean.to_str().unwrap(),
    ]);

    let cont = tmp("kill.stand");
    let ckpt = tmp("kill.standckpt");
    let _ = std::fs::remove_file(&cont);
    let _ = std::fs::remove_file(&ckpt);
    let mut child = gentrius()
        .args([
            "stand",
            "--trees",
            trees.to_str().unwrap(),
            "--threads",
            "2",
            "--output",
            cont.to_str().unwrap(),
            "--checkpoint-every",
            "0.05",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn checkpointed run");
    std::thread::sleep(std::time::Duration::from_millis(300));
    // Child::kill is SIGKILL on unix — no drop guards, no atexit, the
    // hard-crash case the checkpoint format exists for.
    let finished_early = child.try_wait().expect("try_wait").is_some();
    child.kill().ok();
    child.wait().expect("reap child");

    if !finished_early {
        assert!(
            ckpt.exists(),
            "a killed checkpointed run must leave its checkpoint behind"
        );
        let mut slices = 0;
        while ckpt.exists() {
            slices += 1;
            assert!(slices <= 100, "resume never completed the enumeration");
            let out = run_ok(&["stand", "resume", ckpt.to_str().unwrap(), "--threads", "2"]);
            assert!(out.contains("resuming"), "{out}");
        }
    }
    // Either way the finished container must equal the clean run's stand
    // set (resume path when the kill landed mid-run, direct completion in
    // the unlikely early-finish race).
    let sort_lines = |s: String| {
        let mut v: Vec<&str> = s.lines().collect();
        v.sort_unstable();
        v.join("\n")
    };
    let want = sort_lines(run_ok(&["stand", "cat", clean.to_str().unwrap()]));
    let got = sort_lines(run_ok(&["stand", "cat", cont.to_str().unwrap()]));
    assert!(!want.is_empty());
    assert_eq!(got, want, "resumed container diverged from the clean run");
    // No sidecar debris after completion.
    let dir = cont.parent().unwrap();
    let debris: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("kill.stand.") && n.contains("seg"))
        .collect();
    assert!(debris.is_empty(), "segment debris left behind: {debris:?}");
}

#[test]
fn induced_pipes_into_stand() {
    let sp = tmp("species.nwk");
    let pam = tmp("matrix.pam");
    std::fs::write(&sp, "((A,B),((C,D),(E,F)));\n").unwrap();
    std::fs::write(&pam, "A 11\nB 11\nC 11\nD 10\nE 01\nF 11\n").unwrap();
    let induced = run_ok(&[
        "induced",
        "--species",
        sp.to_str().unwrap(),
        "--pam",
        pam.to_str().unwrap(),
    ]);
    let induced_file = tmp("induced.nwk");
    std::fs::write(&induced_file, &induced).unwrap();
    let stand = run_ok(&["stand", "--trees", induced_file.to_str().unwrap()]);
    assert!(stand.contains("stand trees:"), "{stand}");
    // Species tree is on its own stand → at least 1.
    let n: u64 = stand
        .lines()
        .find(|l| l.starts_with("stand trees:"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("count parses");
    assert!(n >= 1);
}
