//! True end-to-end tests: drive the compiled `gentrius` binary through a
//! realistic session — generate a dataset, enumerate its stand serially
//! and in parallel, extract induced trees, run the consensus and the
//! engine verification — checking observable behaviour only (stdout, exit
//! codes, files).

use std::path::PathBuf;
use std::process::Command;

fn gentrius() -> Command {
    // Cargo builds and exposes the package's binaries to its integration
    // tests via CARGO_BIN_EXE_<name>.
    Command::new(env!("CARGO_BIN_EXE_gentrius"))
}

fn run_ok(args: &[&str]) -> String {
    let out = gentrius().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "gentrius {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gentrius-e2e");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

#[test]
fn full_session() {
    // 1. Generate a dataset.
    let ds = tmp("session.dataset");
    let msg = run_ok(&[
        "gen",
        "--kind",
        "sim",
        "--seed",
        "11",
        "--index",
        "2",
        "--output",
        ds.to_str().unwrap(),
    ]);
    assert!(msg.contains("wrote sim-data-2"), "{msg}");

    // 2. Serial stand enumeration with bounded rules.
    let serial = run_ok(&[
        "stand",
        "--dataset",
        ds.to_str().unwrap(),
        "--max-trees",
        "200000",
        "--max-states",
        "500000",
    ]);
    let grab = |out: &str, key: &str| -> String {
        out.lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("missing '{key}' in {out}"))
            .to_string()
    };
    let serial_trees = grab(&serial, "stand trees:");

    // 3. Parallel run must report the same count.
    let par = run_ok(&[
        "stand",
        "--dataset",
        ds.to_str().unwrap(),
        "--threads",
        "2",
        "--max-trees",
        "200000",
        "--max-states",
        "500000",
    ]);
    assert_eq!(serial_trees, grab(&par, "stand trees:"));

    // 4. Write the stand to a file and re-load it as constraints — the
    //    stand of a single complete tree is itself.
    let trees_out = tmp("stand.nwk");
    let _ = run_ok(&[
        "stand",
        "--dataset",
        ds.to_str().unwrap(),
        "--max-trees",
        "200000",
        "--max-states",
        "500000",
        "--output",
        trees_out.to_str().unwrap(),
    ]);
    let content = std::fs::read_to_string(&trees_out).expect("stand file");
    assert!(content.lines().filter(|l| l.ends_with(';')).count() >= 1);

    // 5. Engine verification on a small instance.
    let small = tmp("small.nwk");
    std::fs::write(&small, "((A,B),(C,D));\n((C,D),(E,F));\n").unwrap();
    let verify = run_ok(&["verify", "--trees", small.to_str().unwrap()]);
    assert!(verify.contains("verdict: PASS"), "{verify}");

    // 6. Consensus on the same instance.
    let cons = run_ok(&["consensus", "--trees", small.to_str().unwrap()]);
    assert!(cons.contains("majority consensus:"), "{cons}");

    // 7. Virtual-time speedup table.
    let sim = run_ok(&[
        "sim",
        "--trees",
        small.to_str().unwrap(),
        "--threads",
        "1,2,4",
    ]);
    assert!(sim.lines().count() >= 5, "{sim}");
}

#[test]
fn error_paths_exit_nonzero() {
    let out = gentrius()
        .args(["stand", "--trees", "/nonexistent/file.nwk"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    let out = gentrius().args(["frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn induced_pipes_into_stand() {
    let sp = tmp("species.nwk");
    let pam = tmp("matrix.pam");
    std::fs::write(&sp, "((A,B),((C,D),(E,F)));\n").unwrap();
    std::fs::write(&pam, "A 11\nB 11\nC 11\nD 10\nE 01\nF 11\n").unwrap();
    let induced = run_ok(&[
        "induced",
        "--species",
        sp.to_str().unwrap(),
        "--pam",
        pam.to_str().unwrap(),
    ]);
    let induced_file = tmp("induced.nwk");
    std::fs::write(&induced_file, &induced).unwrap();
    let stand = run_ok(&["stand", "--trees", induced_file.to_str().unwrap()]);
    assert!(stand.contains("stand trees:"), "{stand}");
    // Species tree is on its own stand → at least 1.
    let n: u64 = stand
        .lines()
        .find(|l| l.starts_with("stand trees:"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("count parses");
    assert!(n >= 1);
}
