//! # gentrius-cli — command-line interface
//!
//! An IQ-TREE-2-flavoured front end to the gentrius-rs workspace:
//! stand enumeration (serial or parallel), induced-subtree extraction from
//! a species tree plus PAM, seeded dataset generation, and virtual-time
//! speedup tables. Run `gentrius help` for usage.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use commands::{run, CliError, USAGE};
