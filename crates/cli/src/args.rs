//! A small dependency-free command-line argument parser.
//!
//! The approved offline dependency set has no CLI crate, so flags are
//! parsed by hand: `--flag value`, `--flag=value` and boolean `--flag` are
//! supported, plus positional arguments.

use std::collections::HashMap;

/// Parsed command line: positionals plus flag map.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    /// Positional arguments in order (subcommand first).
    pub positional: Vec<String>,
    flags: HashMap<String, Vec<String>>,
}

/// Parse error (unknown syntax only; semantic checks live with commands).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses raw arguments. `bool_flags` lists flags that take no value.
    pub fn parse(args: &[String], bool_flags: &[&str]) -> Result<ParsedArgs, ArgError> {
        let mut out = ParsedArgs::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    out.flags
                        .entry(k.to_string())
                        .or_default()
                        .push(v.to_string());
                } else if bool_flags.contains(&name) {
                    out.flags
                        .entry(name.to_string())
                        .or_default()
                        .push(String::new());
                } else {
                    i += 1;
                    let v = args
                        .get(i)
                        .ok_or_else(|| ArgError(format!("--{name} expects a value")))?;
                    out.flags
                        .entry(name.to_string())
                        .or_default()
                        .push(v.clone());
                }
            } else {
                out.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// The last value of `flag`, if given.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags
            .get(flag)
            .and_then(|v| v.last())
            .map(|s| s.as_str())
    }

    /// True if the boolean `flag` was given.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// Parses the last value of `flag` as `T`, or returns `default`.
    pub fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{flag}: cannot parse '{v}'"))),
        }
    }

    /// Parses a comma-separated list flag (e.g. `--threads 1,2,4`).
    pub fn get_list(&self, flag: &str) -> Result<Option<Vec<u64>>, ArgError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse::<u64>()
                        .map_err(|_| ArgError(format!("--{flag}: bad number '{x}'")))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        let owned: Vec<String> = v.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&owned, &["verbose", "incremental"]).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["stand", "--trees", "x.nwk", "--threads", "4", "--verbose"]);
        assert_eq!(a.positional, vec!["stand"]);
        assert_eq!(a.get("trees"), Some("x.nwk"));
        assert_eq!(a.get_parsed::<usize>("threads", 1).unwrap(), 4);
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn equals_syntax() {
        let a = parse(&["gen", "--seed=99"]);
        assert_eq!(a.get("seed"), Some("99"));
    }

    #[test]
    fn missing_value_is_error() {
        let owned: Vec<String> = vec!["--trees".into()];
        assert!(ParsedArgs::parse(&owned, &[]).is_err());
    }

    #[test]
    fn list_flag() {
        let a = parse(&["sim", "--threads", "1,2,4,8"]);
        assert_eq!(a.get_list("threads").unwrap(), Some(vec![1, 2, 4, 8]));
        assert_eq!(a.get_list("nope").unwrap(), None);
        let b = parse(&["sim", "--threads", "1,x"]);
        assert!(b.get_list("threads").is_err());
    }

    #[test]
    fn default_when_absent() {
        let a = parse(&["stand"]);
        assert_eq!(a.get_parsed::<u64>("max-trees", 7).unwrap(), 7);
    }
}
