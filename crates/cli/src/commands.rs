//! Subcommand implementations. Everything returns its output as a string
//! (plus optional file side effects) so the logic is directly testable.

use crate::args::ParsedArgs;
use gentrius_core::state::StateSnapshot;
use gentrius_core::{
    canonical_stand_set, BatchingSink, CollectNewick, GentriusConfig, InitialTreeRule, MappingMode,
    RunStats, StandProblem, StopCause, StoppingRules, TaxonOrderRule,
};
use gentrius_datagen::{
    empirical_dataset, simulated_dataset, Dataset, EmpiricalParams, SimulatedParams,
};
use gentrius_parallel::{
    run_parallel_epoch, run_parallel_with_sinks, ParallelConfig, ParallelRunResult, ResumeFrontier,
    Task,
};
use gentrius_sim::{simulate, SimConfig};
use gentrius_standfile::{
    merge_segments, Checkpoint, CkptTask, Container, ContainerSink, ContainerSummary,
    StandfileError,
};
use phylo::newick::{parse_forest, to_newick};
use phylo::pam::Pam;
use phylo::taxa::{TaxonId, TaxonSet};
use phylo::tree::{EdgeId, Tree};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Top-level error type for the CLI.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// The usage text.
pub const USAGE: &str = "\
gentrius — phylogenetic stand enumeration (Rust reproduction of parallel Gentrius)

USAGE:
  gentrius stand   --trees FILE | (--species FILE --pam FILE)
                   [--threads N] [--max-trees N] [--max-states N] [--max-hours H]
                   [--no-dynamic] [--initial-tree IDX]
                   [--mapping recompute|incremental|edge-indexed]
                   [--print-trees] [--output FILE[.stand]] [--max-collect N]
                   [--metrics-json FILE] [--trace-json FILE]
                   [--no-adaptive-split] [--stop-poll-stride N]
                   [--emit-batch N] [--coarse-flush] [--checkpoint-every SECS]
  gentrius stand resume FILE.standckpt [--threads N] [--checkpoint-every SECS]
                   [--emit-batch N] [--no-adaptive-split] [--stop-poll-stride N]
                   [--coarse-flush]
  gentrius stand export --input FILE --output FILE
  gentrius stand cat FILE.stand [--from N] [--count M]
  gentrius induced --species FILE --pam FILE
  gentrius gen     --kind sim|emp [--seed S] [--index I] [--scale paper|scaled]
                   [--output FILE]  |  gen --scenario NAME [--output FILE]
                   (--scenario list prints the scenario registry)
  gentrius sim     (--dataset FILE | --trees FILE) [--threads 1,2,4,8,16]
                   [--max-trees N] [--max-states N] [--max-ticks T] [--no-steal]
                   [--trace]
  gentrius consensus (--trees FILE | --dataset FILE | --species FILE --pam FILE)
                   [--max-trees N] [--max-states N] [--min-support F]
  gentrius verify  (--trees FILE | --dataset FILE | --species FILE --pam FILE)
                   [--threads N] [--max-trees N] [--max-states N]
  gentrius superb  (--trees FILE | --dataset FILE | --species FILE --pam FILE)
  gentrius score   --matrix FILE --partitions FILE --trees FILE
                   [--branch-len T] [--likelihood]
  gentrius help

Input formats: tree files hold one Newick per line; PAM files hold
'<taxon> <0/1 row>' lines; dataset files use the gentrius dataset v1 format.
Stand containers: an --output path ending in .stand streams stand trees
into an append-only block-compressed container (bounded memory; random
access by tree index) instead of collecting Newick strings in RAM;
--print-trees then reads the trees back from the container. 'stand
export' converts container <-> Newick (the direction is sniffed from the
input file's magic); 'stand cat' pages trees out of a container by index
range. The legacy Newick collect paths keep at most --max-collect trees
(default 10000000) in memory and report 'truncated: true' plus a warning
when the cap drops trees.
Checkpointing: --checkpoint-every SECS (requires --output FILE.stand)
periodically quiesces the workers, writes the pending search frontier to
a FILE.standckpt sidecar (atomically: tmp + rename) and keeps going; the
same checkpoint is written when the wall-clock limit fires. 'stand
resume FILE.standckpt' re-injects that frontier and appends to the same
container, so a killed or timed-out run loses at most one checkpoint
interval of work. Counters are cumulative across resumes; the final
container is identical to an uninterrupted run's.
Observability: --metrics-json writes a schema-versioned run-metrics JSON
document; --trace-json writes a Chrome-trace-event timeline (load it in
Perfetto or chrome://tracing). Either flag routes the run through the
parallel engine, even with --threads 1.
Scheduler tuning (parallel runs): --no-adaptive-split disables the
steal-to-execute granularity controller (workers then always publish
stealable frames); --stop-poll-stride N polls the stop flag every N
steps instead of the default 64; --emit-batch N buffers N stand trees
per worker before forwarding them to the collector; --coarse-flush
raises the counter-flush thresholds for blow-up instances.
";

/// Dispatches a full command line (without the program name).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let parsed = ParsedArgs::parse(
        args,
        &[
            "no-dynamic",
            "incremental",
            "print-trees",
            "no-steal",
            "no-adaptive-split",
            "coarse-flush",
            "trace",
            "likelihood",
            "help",
        ],
    )
    .map_err(|e| CliError(e.to_string()))?;
    if parsed.has("help") {
        return Ok(USAGE.to_string());
    }
    match parsed.positional.first().map(|s| s.as_str()) {
        Some("stand") => match parsed.positional.get(1).map(|s| s.as_str()) {
            Some("export") => cmd_stand_export(&parsed),
            Some("cat") => cmd_stand_cat(&parsed),
            Some("resume") => cmd_stand_resume(&parsed),
            _ => cmd_stand(&parsed),
        },
        Some("induced") => cmd_induced(&parsed),
        Some("gen") => cmd_gen(&parsed),
        Some("sim") => cmd_sim(&parsed),
        Some("consensus") => cmd_consensus(&parsed),
        Some("verify") => cmd_verify(&parsed),
        Some("superb") => cmd_superb(&parsed),
        Some("score") => cmd_score(&parsed),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

/// Loads the problem (and taxa) from `--trees`, `--dataset`, or
/// `--species`+`--pam`.
fn load_problem(a: &ParsedArgs) -> Result<(TaxonSet, StandProblem), CliError> {
    if let Some(path) = a.get("dataset") {
        let d = Dataset::load(std::path::Path::new(path))?;
        let p = d.problem().map_err(|e| CliError(e.to_string()))?;
        return Ok((d.taxa, p));
    }
    if let Some(path) = a.get("trees") {
        let text = std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
        // NEXUS tree files are auto-detected by their header; anything
        // else is treated as one Newick per line.
        let (taxa, trees) = if text.trim_start().to_ascii_uppercase().starts_with("#NEXUS") {
            let data = phylo::nexus::parse_nexus(&text).map_err(|e| CliError(e.to_string()))?;
            (data.taxa, data.trees.into_iter().map(|(_, t)| t).collect())
        } else {
            parse_forest(text.lines()).map_err(|e| CliError(e.to_string()))?
        };
        let p = StandProblem::from_constraints(trees).map_err(|e| CliError(e.to_string()))?;
        return Ok((taxa, p));
    }
    if let (Some(sp), Some(pp)) = (a.get("species"), a.get("pam")) {
        let sp_text = std::fs::read_to_string(sp).map_err(|e| CliError(format!("{sp}: {e}")))?;
        let pam_text = std::fs::read_to_string(pp).map_err(|e| CliError(format!("{pp}: {e}")))?;
        let (mut taxa, mut trees) =
            parse_forest(sp_text.lines().take(1)).map_err(|e| CliError(e.to_string()))?;
        let pam = Pam::parse_text(&pam_text, &mut taxa)?;
        if trees[0].universe() != taxa.len() {
            // PAM introduced extra labels: re-parse the tree over the
            // enlarged universe.
            let line = sp_text.lines().next().unwrap_or_default();
            trees[0] =
                phylo::newick::parse_newick(line, &taxa).map_err(|e| CliError(e.to_string()))?;
        }
        let p = StandProblem::from_species_tree_and_pam(&trees[0], &pam)
            .map_err(|e| CliError(e.to_string()))?;
        return Ok((taxa, p));
    }
    err("provide --trees FILE, --dataset FILE, or --species FILE with --pam FILE")
}

fn config_from(a: &ParsedArgs) -> Result<GentriusConfig, CliError> {
    let defaults = StoppingRules::paper_defaults();
    let max_trees = a
        .get_parsed("max-trees", defaults.max_stand_trees.unwrap())
        .map_err(|e| CliError(e.to_string()))?;
    let max_states = a
        .get_parsed("max-states", defaults.max_intermediate_states.unwrap())
        .map_err(|e| CliError(e.to_string()))?;
    let max_hours: f64 = a
        .get_parsed("max-hours", 168.0)
        .map_err(|e| CliError(e.to_string()))?;
    let initial_tree = match a.get("initial-tree") {
        None => InitialTreeRule::MaxOverlap,
        Some(v) => InitialTreeRule::Index(
            v.parse()
                .map_err(|_| CliError(format!("--initial-tree: bad index '{v}'")))?,
        ),
    };
    Ok(GentriusConfig {
        initial_tree,
        taxon_order: if a.has("no-dynamic") {
            TaxonOrderRule::ById
        } else {
            TaxonOrderRule::Dynamic
        },
        stopping: StoppingRules {
            max_stand_trees: Some(max_trees),
            max_intermediate_states: Some(max_states),
            max_time: Some(Duration::from_secs_f64(max_hours * 3600.0)),
        },
        mapping: match a.get("mapping") {
            // `--incremental` predates `--mapping` and is kept as an alias.
            None if a.has("incremental") => MappingMode::Incremental,
            None => MappingMode::default(),
            Some(v) => v.parse::<MappingMode>().map_err(CliError)?,
        },
    })
}

fn stop_str(stop: Option<StopCause>) -> &'static str {
    match stop {
        None => "complete enumeration",
        Some(StopCause::StandTreeLimit) => "stopped: stand-tree limit (rule 1)",
        Some(StopCause::StateLimit) => "stopped: intermediate-state limit (rule 2)",
        Some(StopCause::TimeLimit) => "stopped: time limit (rule 3)",
    }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume plumbing
// ---------------------------------------------------------------------------

/// `FILE.stand` → `FILE.standckpt` (the checkpoint sidecar path).
fn ckpt_path_for(output: &str) -> PathBuf {
    PathBuf::from(format!("{output}ckpt"))
}

/// Removes stale segment files next to `output` — `{output}.seg{i}` from
/// the plain parallel path and `{output}.g{gen}.seg{i}` from checkpointed
/// epochs — except the paths in `keep` (segments a checkpoint still
/// references). A previous crashed run at a *higher* thread count leaves
/// segments no current-run index will ever name, so a prefix sweep of the
/// directory is the only reliable cleanup. Returns how many files went.
fn clean_stale_segments(output: &str, keep: &[PathBuf]) -> Result<usize, CliError> {
    let out_path = Path::new(output);
    let dir = match out_path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Some(fname) = out_path.file_name().and_then(|n| n.to_str()) else {
        return Ok(0);
    };
    let keep_names: Vec<std::ffi::OsString> = keep
        .iter()
        .filter_map(|p| p.file_name().map(Into::into))
        .collect();
    // A missing parent directory is not this function's error to report:
    // creating the output will fail loudly a moment later.
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) => return Ok(0),
    };
    let mut removed = 0usize;
    for entry in entries.flatten() {
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let name_os = entry.file_name();
        let Some(name) = name_os.to_str() else {
            continue;
        };
        let is_seg = name.strip_prefix(fname).is_some_and(|rest| {
            rest.starts_with(".seg") || (rest.starts_with(".g") && rest.contains(".seg"))
        });
        if !is_seg || keep_names.contains(&name_os) {
            continue;
        }
        std::fs::remove_file(entry.path())
            .map_err(|e| CliError(format!("{}: {e}", entry.path().display())))?;
        removed += 1;
    }
    Ok(removed)
}

/// Drop guard over in-flight segment files: any early return between
/// segment creation and the final merge (a failed `finish`, a failed
/// `merge_segments`) would otherwise orphan `.seg{i}` files on disk.
/// Disarm after the segments have been merged (or handed over to a
/// checkpoint that references them).
struct SegGuard {
    paths: Vec<PathBuf>,
    armed: bool,
}

impl SegGuard {
    fn new() -> Self {
        SegGuard {
            paths: Vec::new(),
            armed: true,
        }
    }

    fn track(&mut self, p: PathBuf) {
        self.paths.push(p);
    }

    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for SegGuard {
    fn drop(&mut self) {
        if self.armed {
            for p in &self.paths {
                // Best effort: most tracked paths never get created
                // (threads that emitted nothing), and cleanup must not
                // mask the error that is already propagating.
                let _ = std::fs::remove_file(p);
            }
        }
    }
}

/// Serializes the run header + frontier into a [`Checkpoint`].
#[allow(clippy::too_many_arguments)]
fn build_checkpoint(
    taxa: &TaxonSet,
    problem: &StandProblem,
    config: &GentriusConfig,
    threads: usize,
    initial_tree: usize,
    stats: RunStats,
    generation: u64,
    output: &str,
    segments: &[PathBuf],
    tasks: &[Task],
) -> Checkpoint {
    let taxa_names: Vec<String> = taxa.iter().map(|(_, n)| n.to_string()).collect();
    let constraints: Vec<String> = problem
        .constraints()
        .iter()
        .map(|t| to_newick(t, taxa))
        .collect();
    Checkpoint {
        problem_hash: gentrius_standfile::ckpt::problem_hash(&taxa_names, &constraints),
        mapping: config.mapping,
        order_code: tasks.first().map(|t| t.snapshot.order_code()).unwrap_or(0),
        threads,
        initial_tree,
        stopping: config.stopping.clone(),
        stats,
        generation,
        output: output.to_string(),
        taxa: taxa_names,
        constraints,
        segments: segments.iter().map(|p| p.display().to_string()).collect(),
        tasks: tasks
            .iter()
            .map(|t| CkptTask {
                taxon: t.taxon.0,
                branches: t.branches.iter().map(|e| e.0).collect(),
                depth: t.depth as u64,
                remaining: t.snapshot.remaining().iter().map(|x| x.0).collect(),
                tree: t.snapshot.agile().dump_arena(),
            })
            .collect(),
    }
}

/// Rebuilds the problem, config and pending tasks from a decoded
/// checkpoint. Every reconstructed snapshot is re-validated against the
/// reconstructed problem ([`StateSnapshot::from_parts`]), so a checkpoint
/// that passed the checksum but carries an inconsistent frontier is
/// rejected with an error rather than enumerating wrong stands.
fn restore_checkpoint(
    c: &Checkpoint,
) -> Result<(TaxonSet, StandProblem, GentriusConfig, Vec<Task>), CliError> {
    let mut taxa = TaxonSet::new();
    for name in &c.taxa {
        taxa.intern(name);
    }
    let mut trees = Vec::with_capacity(c.constraints.len());
    for (i, nwk) in c.constraints.iter().enumerate() {
        trees.push(
            phylo::newick::parse_newick(nwk, &taxa)
                .map_err(|e| CliError(format!("checkpoint constraint {}: {e}", i + 1)))?,
        );
    }
    let problem = StandProblem::from_constraints(trees).map_err(|e| CliError(e.to_string()))?;
    let taxon_order = match c.order_code {
        0 => TaxonOrderRule::ById,
        1 => TaxonOrderRule::Dynamic,
        2 => TaxonOrderRule::DynamicByConstraints,
        other => return err(format!("checkpoint: unknown order-engine code {other}")),
    };
    let config = GentriusConfig {
        initial_tree: InitialTreeRule::Index(c.initial_tree),
        taxon_order,
        stopping: c.stopping.clone(),
        mapping: c.mapping,
    };
    let mut tasks = Vec::with_capacity(c.tasks.len());
    for (i, t) in c.tasks.iter().enumerate() {
        let bad = |e: String| CliError(format!("checkpoint task {}: {e}", i + 1));
        let tree = Tree::from_arena_dump(&t.tree).map_err(|e| bad(e.to_string()))?;
        let remaining: Vec<TaxonId> = t.remaining.iter().map(|&x| TaxonId(x)).collect();
        let snap = StateSnapshot::from_parts(&problem, tree, remaining, c.order_code, c.mapping)
            .map_err(bad)?;
        if !t.branches.is_empty() && !snap.remaining().contains(&TaxonId(t.taxon)) {
            return Err(bad(format!("pending taxon {} is not remaining", t.taxon)));
        }
        let branches: Vec<EdgeId> = t.branches.iter().map(|&x| EdgeId(x)).collect();
        tasks.push(Task::new(
            snap,
            TaxonId(t.taxon),
            branches,
            usize::try_from(t.depth).unwrap_or(usize::MAX),
        ));
    }
    Ok((taxa, problem, config, tasks))
}

/// Seed state for [`run_stand_epochs`]: where the run picks up.
struct EpochInit {
    /// Next epoch number (namespaces this run's new segment files).
    gen: u64,
    /// Finalized segments from previous epochs, merged at the end.
    segments: Vec<PathBuf>,
    /// Counter totals carried over from previous epochs.
    base: RunStats,
    /// `None` → fresh run (serial prefix + initial split); `Some` →
    /// re-inject these frontier descriptors.
    frontier: Option<Vec<Task>>,
}

/// The checkpointed container run: repeats engine epochs, writing the
/// pending frontier to `FILE.standckpt` every `ckpt_every` seconds, until
/// the enumeration completes, a count limit fires, or the wall-clock
/// budget runs out (which leaves a final checkpoint for `stand resume`).
///
/// Durability order per epoch: segments are finalized (footer written)
/// *before* the checkpoint naming them is renamed into place, so a crash
/// at any point leaves either a fully consistent checkpoint or none.
#[allow(clippy::too_many_arguments)]
fn run_stand_epochs(
    taxa: &TaxonSet,
    problem: &StandProblem,
    config: &GentriusConfig,
    pcfg: &ParallelConfig,
    path: &str,
    emit_batch: usize,
    ckpt_every: f64,
    init: EpochInit,
) -> Result<(ParallelRunResult, Option<ContainerSummary>, String), CliError> {
    let started = Instant::now();
    let ckpt_path = ckpt_path_for(path);
    let mut gen = init.gen;
    let mut segments = init.segments;
    let mut base = init.base;
    let mut frontier = init.frontier;
    let mut extra = String::new();
    let mut epochs = 0u64;
    loop {
        // Rebase the wall-clock budget: the engine's monitor measures from
        // epoch start, but stopping rule 3 bounds the whole invocation.
        let mut cfg = config.clone();
        if let Some(max) = config.stopping.max_time {
            cfg.stopping.max_time = Some(max.saturating_sub(started.elapsed()));
        }
        let mut epcfg = pcfg.clone();
        if let Some(m) = &mut epcfg.monitor {
            m.checkpoint_every = Some(Duration::from_secs_f64(ckpt_every));
        }
        let gen_now = gen;
        let seg_path = move |i: usize| PathBuf::from(format!("{path}.g{gen_now}.seg{i}"));
        let mut guard = SegGuard::new();
        for i in 0..=epcfg.threads {
            guard.track(seg_path(i));
        }
        let resume = frontier.take().map(|tasks| ResumeFrontier { tasks, base });
        let (mut r, sinks, captured) = run_parallel_epoch(
            problem,
            &cfg,
            &epcfg,
            |i| {
                BatchingSink::new(
                    ContainerSink::create(&seg_path(i), taxa),
                    emit_batch.max(64),
                )
            },
            resume,
            true,
        )
        .map_err(|e| CliError(e.to_string()))?;
        // Finalize this epoch's segments before any checkpoint can name
        // them; segments that collected nothing are dropped immediately.
        for (i, s) in sinks.into_iter().enumerate() {
            let p = seg_path(i);
            let summary = s
                .into_inner()
                .finish()
                .map_err(|e| CliError(format!("{}: {e}", p.display())))?;
            if summary.trees > 0 {
                segments.push(p);
            } else {
                std::fs::remove_file(&p).map_err(|e| CliError(format!("{}: {e}", p.display())))?;
            }
        }
        base = r.stats;
        epochs += 1;
        r.elapsed = started.elapsed();
        let count_stop = matches!(
            r.stop,
            Some(StopCause::StandTreeLimit | StopCause::StateLimit)
        );
        if captured.is_empty() || count_stop {
            // Terminal: the enumeration is done (or a count limit ended it
            // for good). Merge everything and retire the checkpoint.
            let summary = merge_segments(Path::new(path), taxa, &segments)
                .map_err(|e| CliError(format!("{path}: {e}")))?;
            let _ = std::fs::remove_file(&ckpt_path);
            guard.disarm();
            if epochs > 1 {
                writeln!(extra, "checkpoint epochs: {epochs}").unwrap();
            }
            return Ok((r, Some(summary), extra));
        }
        gen += 1;
        let ck = build_checkpoint(
            taxa,
            problem,
            config,
            epcfg.threads,
            r.initial_tree,
            r.stats,
            gen,
            path,
            &segments,
            &captured,
        );
        ck.write_atomic(&ckpt_path)
            .map_err(|e| CliError(format!("{}: {e}", ckpt_path.display())))?;
        // The checkpoint now owns this epoch's segments.
        guard.disarm();
        if matches!(r.stop, Some(StopCause::TimeLimit)) {
            writeln!(extra, "checkpoint epochs: {epochs}").unwrap();
            writeln!(
                extra,
                "checkpoint: {} ({} pending tasks; continue with 'gentrius stand resume {}')",
                ckpt_path.display(),
                captured.len(),
                ckpt_path.display()
            )
            .unwrap();
            return Ok((r, None, extra));
        }
        frontier = Some(captured);
    }
}

/// Resumes a checkpointed container run: `gentrius stand resume
/// FILE.standckpt [--threads N] [--checkpoint-every SECS]`.
fn cmd_stand_resume(a: &ParsedArgs) -> Result<String, CliError> {
    let Some(path) = a
        .positional
        .get(2)
        .map(|s| s.as_str())
        .or_else(|| a.get("input"))
    else {
        return err(
            "stand resume requires a checkpoint path: gentrius stand resume FILE.standckpt \
             [--threads N] [--checkpoint-every SECS]",
        );
    };
    let ck = Checkpoint::read(Path::new(path)).map_err(|e| CliError(format!("{path}: {e}")))?;
    let (taxa, problem, config, tasks) = restore_checkpoint(&ck)?;
    let threads: usize = a
        .get_parsed("threads", ck.threads.max(1))
        .map_err(|e| CliError(e.to_string()))?;
    let threads = threads.max(1);
    let ckpt_every: f64 = a
        .get_parsed("checkpoint-every", 60.0f64)
        .map_err(|e| CliError(e.to_string()))?;
    if ckpt_every.is_nan() || ckpt_every <= 0.0 {
        return err("--checkpoint-every: must be a positive number of seconds");
    }
    let emit_batch: usize = a
        .get_parsed("emit-batch", 1usize)
        .map_err(|e| CliError(e.to_string()))?;

    let mut out = String::new();
    writeln!(
        out,
        "resuming {path} -> {} ({} pending tasks, {} stand trees so far, epoch {})",
        ck.output,
        tasks.len(),
        ck.stats.stand_trees,
        ck.generation
    )
    .unwrap();
    // Segments the interrupted epoch was writing when it died are not in
    // the checkpoint and must not survive into the merge.
    let keep: Vec<PathBuf> = ck.segments.iter().map(PathBuf::from).collect();
    for s in &keep {
        if !s.is_file() {
            return err(format!(
                "{}: segment referenced by the checkpoint is missing",
                s.display()
            ));
        }
    }
    let removed = clean_stale_segments(&ck.output, &keep)?;
    if removed > 0 {
        writeln!(
            out,
            "note: removed {removed} stale segment file(s) from the interrupted epoch"
        )
        .unwrap();
    }

    let mut pcfg = ParallelConfig::with_threads(threads);
    pcfg.adaptive_split = !a.has("no-adaptive-split");
    pcfg.stop_poll_stride = a
        .get_parsed("stop-poll-stride", pcfg.stop_poll_stride)
        .map_err(|e| CliError(e.to_string()))?;
    if a.has("coarse-flush") {
        pcfg.flush = gentrius_parallel::FlushThresholds::coarse();
    }
    let (r, csum, extra) = run_stand_epochs(
        &taxa,
        &problem,
        &config,
        &pcfg,
        &ck.output,
        emit_batch,
        ckpt_every,
        EpochInit {
            gen: ck.generation,
            segments: keep,
            base: ck.stats,
            frontier: Some(tasks),
        },
    )?;
    writeln!(out, "threads: {threads}").unwrap();
    writeln!(out, "mapping: {}", config.mapping).unwrap();
    writeln!(out, "stand trees: {}", r.stats.stand_trees).unwrap();
    writeln!(out, "intermediate states: {}", r.stats.intermediate_states).unwrap();
    writeln!(out, "dead ends: {}", r.stats.dead_ends).unwrap();
    writeln!(out, "status: {}", stop_str(r.stop)).unwrap();
    writeln!(out, "time: {:.3}s", r.elapsed.as_secs_f64()).unwrap();
    out.push_str(&extra);
    if let Some(csum) = csum {
        writeln!(
            out,
            "wrote {} trees to {} ({} blocks, .stand container)",
            csum.trees, ck.output, csum.blocks
        )
        .unwrap();
    }
    Ok(out)
}

fn cmd_stand(a: &ParsedArgs) -> Result<String, CliError> {
    let (taxa, problem) = load_problem(a)?;
    let config = config_from(a)?;
    let threads: usize = a
        .get_parsed("threads", 1usize)
        .map_err(|e| CliError(e.to_string()))?;
    let output = a.get("output");
    // An output path ending in `.stand` selects the streaming container
    // path: trees go to disk as they are generated, memory stays bounded
    // by one block, and no in-memory collection cap applies.
    let container_output = output.filter(|p| p.ends_with(".stand"));
    let legacy_output = if container_output.is_some() {
        None
    } else {
        output
    };
    let max_collect: usize = a
        .get_parsed("max-collect", 10_000_000usize)
        .map_err(|e| CliError(e.to_string()))?;
    let want_collect =
        legacy_output.is_some() || (a.has("print-trees") && container_output.is_none());
    let cap = if want_collect { max_collect } else { 0 };
    let ckpt_every: Option<f64> = match a.get("checkpoint-every") {
        None => None,
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| CliError(format!("--checkpoint-every: bad seconds '{v}'")))?;
            if secs.is_nan() || secs <= 0.0 {
                return err("--checkpoint-every: must be a positive number of seconds");
            }
            Some(secs)
        }
    };
    if ckpt_every.is_some() && container_output.is_none() {
        return err(
            "--checkpoint-every requires --output FILE.stand (checkpoints append to a \
             .stand container)",
        );
    }

    let mut out = String::new();
    writeln!(
        out,
        "input: {} constraint trees, {} taxa",
        problem.constraints().len(),
        problem.num_taxa()
    )
    .unwrap();

    if let Some(path) = container_output {
        // A previous crashed run may have left segment files (possibly
        // from a higher thread count, so no index loop can name them all)
        // and a checkpoint next to the output; a fresh run must not let
        // either survive beside — or get merged into — its container.
        let removed = clean_stale_segments(path, &[])?;
        if removed > 0 {
            writeln!(
                out,
                "note: removed {removed} stale segment file(s) from a previous run"
            )
            .unwrap();
        }
        let cp = ckpt_path_for(path);
        if cp.is_file() {
            std::fs::remove_file(&cp).map_err(|e| CliError(format!("{}: {e}", cp.display())))?;
            writeln!(
                out,
                "note: removed stale checkpoint {} (this is a fresh run; use 'gentrius stand \
                 resume' to continue a previous one)",
                cp.display()
            )
            .unwrap();
        }
    }

    let metrics_path = a.get("metrics-json");
    let trace_path = a.get("trace-json");
    // The exports serialize a ParallelRunResult, so either flag routes the
    // run through the parallel engine (which supports --threads 1); so
    // does checkpointing, whose frontier only exists in the engine.
    let use_parallel =
        threads > 1 || metrics_path.is_some() || trace_path.is_some() || ckpt_every.is_some();

    let mut export_lines = String::new();
    let (stats, stop, elapsed, mut newicks, sched, container_summary) = if !use_parallel {
        if let Some(path) = container_output {
            let mut sink = ContainerSink::create(Path::new(path), &taxa);
            let r = problem_run_serial(&problem, &config, &mut sink)?;
            let summary = sink
                .finish()
                .map_err(|e| CliError(format!("{path}: {e}")))?;
            (r.stats, r.stop, r.elapsed, Vec::new(), None, Some(summary))
        } else {
            let mut sink = CollectNewick::with_cap(&taxa, cap);
            let r = problem_run_serial(&problem, &config, &mut sink)?;
            (r.stats, r.stop, r.elapsed, sink.out, None, None)
        }
    } else {
        let mut pcfg = ParallelConfig::with_threads(threads);
        pcfg.trace = trace_path.is_some();
        pcfg.adaptive_split = !a.has("no-adaptive-split");
        pcfg.stop_poll_stride = a
            .get_parsed("stop-poll-stride", pcfg.stop_poll_stride)
            .map_err(|e| CliError(e.to_string()))?;
        if a.has("coarse-flush") {
            pcfg.flush = gentrius_parallel::FlushThresholds::coarse();
        }
        let emit_batch: usize = a
            .get_parsed("emit-batch", 1usize)
            .map_err(|e| CliError(e.to_string()))?;
        // Batching only pays when trees are kept: a count-only collector
        // (cap 0) discards immediately, so buffering would add clones for
        // nothing.
        let (r, merged, csum) = if let Some(path) = container_output {
            if let Some(every) = ckpt_every {
                let (r, csum, extra) = run_stand_epochs(
                    &taxa,
                    &problem,
                    &config,
                    &pcfg,
                    path,
                    emit_batch,
                    every,
                    EpochInit {
                        gen: 0,
                        segments: Vec::new(),
                        base: RunStats::new(),
                        frontier: None,
                    },
                )?;
                export_lines.push_str(&extra);
                (r, Vec::new(), csum)
            } else {
                // One container segment per engine context (0 = the serial
                // prefix, 1.. = workers), merged by raw block copy
                // afterwards: workers never contend on one writer, and
                // encoding runs off the per-state hot loop behind a
                // BatchingSink. The guard removes the segments if finish
                // or merge fails; otherwise the merge consumed them.
                let seg_path = |i: usize| PathBuf::from(format!("{path}.seg{i}"));
                let mut guard = SegGuard::new();
                for i in 0..=pcfg.threads {
                    guard.track(seg_path(i));
                }
                let (r, sinks) = run_parallel_with_sinks(&problem, &config, &pcfg, |i| {
                    BatchingSink::new(
                        ContainerSink::create(&seg_path(i), &taxa),
                        emit_batch.max(64),
                    )
                })
                .map_err(|e| CliError(e.to_string()))?;
                let mut segs = Vec::new();
                for (i, s) in sinks.into_iter().enumerate() {
                    let p = seg_path(i);
                    s.into_inner()
                        .finish()
                        .map_err(|e| CliError(format!("{}: {e}", p.display())))?;
                    segs.push(p);
                }
                let summary = merge_segments(Path::new(path), &taxa, &segs)
                    .map_err(|e| CliError(format!("{path}: {e}")))?;
                guard.disarm();
                (r, Vec::new(), Some(summary))
            }
        } else if want_collect && emit_batch > 1 {
            let (r, sinks) = run_parallel_with_sinks(&problem, &config, &pcfg, |_| {
                BatchingSink::new(CollectNewick::with_cap(&taxa, cap), emit_batch)
            })
            .map_err(|e| CliError(e.to_string()))?;
            let merged = canonical_stand_set(sinks.into_iter().map(|s| s.into_inner().out));
            (r, merged, None)
        } else {
            let (r, sinks) = run_parallel_with_sinks(&problem, &config, &pcfg, |_| {
                CollectNewick::with_cap(&taxa, cap)
            })
            .map_err(|e| CliError(e.to_string()))?;
            let merged = canonical_stand_set(sinks.into_iter().map(|s| s.out));
            (r, merged, None)
        };
        if let Some(path) = metrics_path {
            let mut f =
                std::fs::File::create(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            gentrius_parallel::obs::write_run_metrics(&mut f, &r, &pcfg.flush)
                .map_err(|e| CliError(format!("{path}: {e}")))?;
            writeln!(
                export_lines,
                "wrote run metrics (schema v{}) to {path}",
                gentrius_parallel::obs::METRICS_VERSION
            )
            .unwrap();
        }
        if let Some(path) = trace_path {
            let mut f =
                std::fs::File::create(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            gentrius_parallel::obs::write_chrome_trace(&mut f, &r)
                .map_err(|e| CliError(format!("{path}: {e}")))?;
            let spans: usize = r.workers.iter().map(|w| w.spans.len()).sum();
            writeln!(
                export_lines,
                "wrote chrome trace ({spans} task spans) to {path}"
            )
            .unwrap();
        }
        (r.stats, r.stop, r.elapsed, merged, Some(r.scheduler), csum)
    };

    writeln!(out, "threads: {threads}").unwrap();
    writeln!(out, "mapping: {}", config.mapping).unwrap();
    writeln!(out, "stand trees: {}", stats.stand_trees).unwrap();
    writeln!(out, "intermediate states: {}", stats.intermediate_states).unwrap();
    writeln!(out, "dead ends: {}", stats.dead_ends).unwrap();
    // Honesty about the in-memory collection cap: the engine counted every
    // stand tree, but the collectors keep at most --max-collect each.
    let collected = newicks.len() as u64;
    let truncated = want_collect && collected < stats.stand_trees;
    if truncated {
        writeln!(
            out,
            "truncated: true (collected {collected} of {} stand trees)",
            stats.stand_trees
        )
        .unwrap();
        writeln!(
            out,
            "warning: in-memory collection capped at --max-collect {max_collect}; \
             raise it or stream to a container with --output FILE.stand"
        )
        .unwrap();
    }
    if let Some(s) = &sched {
        writeln!(
            out,
            "scheduler: {} tasks, {} splits, {} steals ({} empty sweeps), {} parks, {} injected, {} deque grows",
            s.executed, s.splits, s.steals, s.failed_steals, s.parks, s.injected, s.deque_grows
        )
        .unwrap();
    }
    writeln!(out, "status: {}", stop_str(stop)).unwrap();
    writeln!(out, "time: {:.3}s", elapsed.as_secs_f64()).unwrap();
    out.push_str(&export_lines);

    if let Some(path) = container_output {
        // A checkpointed run that hit the time limit has no merged
        // container yet (only segments + the checkpoint), so there is
        // nothing to summarize or read back.
        let have_container = container_summary.is_some();
        if let Some(csum) = container_summary {
            writeln!(
                out,
                "wrote {} trees to {path} ({} blocks, .stand container)",
                csum.trees, csum.blocks
            )
            .unwrap();
        }
        if a.has("print-trees") && have_container {
            // Read back from the container instead of teeing into RAM
            // during the run; sorted so the printed set matches the
            // collect path's canonical order.
            let mut c =
                Container::open(Path::new(path)).map_err(|e| CliError(format!("{path}: {e}")))?;
            let mut all = Vec::with_capacity(usize::try_from(c.len()).unwrap_or(0));
            c.for_each_newick(0, u64::MAX, |_, nwk| {
                all.push(nwk.to_string());
                Ok(())
            })
            .map_err(|e| CliError(format!("{path}: {e}")))?;
            all.sort();
            for t in &all {
                writeln!(out, "{t}").unwrap();
            }
        }
    } else if want_collect {
        newicks.sort();
        if let Some(path) = legacy_output {
            // One line at a time through a BufWriter: `join` would build a
            // second full copy of the stand in memory first.
            let file = std::fs::File::create(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let mut w = std::io::BufWriter::new(file);
            for t in &newicks {
                writeln!(w, "{t}").map_err(|e| CliError(format!("{path}: {e}")))?;
            }
            w.flush().map_err(|e| CliError(format!("{path}: {e}")))?;
            if truncated {
                writeln!(
                    out,
                    "wrote {} of {} trees to {path}",
                    newicks.len(),
                    stats.stand_trees
                )
                .unwrap();
            } else {
                writeln!(out, "wrote {} trees to {path}", newicks.len()).unwrap();
            }
        }
        if a.has("print-trees") {
            for t in &newicks {
                writeln!(out, "{t}").unwrap();
            }
        }
    }
    Ok(out)
}

/// Converts between `.stand` containers and Newick tree files; the
/// direction is chosen by sniffing the input file's leading magic.
fn cmd_stand_export(a: &ParsedArgs) -> Result<String, CliError> {
    let (Some(input), Some(output)) = (a.get("input"), a.get("output")) else {
        return err(
            "stand export requires --input FILE (a .stand container or a Newick \
             tree file) and --output FILE",
        );
    };
    let mut head = [0u8; 8];
    {
        use std::io::Read as _;
        let mut f = std::fs::File::open(input).map_err(|e| CliError(format!("{input}: {e}")))?;
        // A short read leaves `head` without the magic, which routes tiny
        // files down the Newick path — correct, since no valid container
        // is under 8 bytes.
        let _ = f.read(&mut head);
    }
    if &head == gentrius_standfile::container::MAGIC {
        let mut c =
            Container::open(Path::new(input)).map_err(|e| CliError(format!("{input}: {e}")))?;
        let file = std::fs::File::create(output).map_err(|e| CliError(format!("{output}: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        c.for_each_newick(0, u64::MAX, |_, nwk| {
            writeln!(w, "{nwk}").map_err(StandfileError::from)
        })
        .map_err(|e| CliError(format!("{output}: {e}")))?;
        w.flush().map_err(|e| CliError(format!("{output}: {e}")))?;
        Ok(format!(
            "exported {} trees from {input} to {output} (Newick)\n",
            c.len()
        ))
    } else {
        let text = std::fs::read_to_string(input).map_err(|e| CliError(format!("{input}: {e}")))?;
        let (taxa, trees) = parse_forest(text.lines()).map_err(|e| CliError(e.to_string()))?;
        let mut sink = ContainerSink::create(Path::new(output), &taxa);
        for t in &trees {
            use gentrius_core::StandSink as _;
            sink.stand_tree(t);
        }
        let s = sink
            .finish()
            .map_err(|e| CliError(format!("{output}: {e}")))?;
        Ok(format!(
            "packed {} trees from {input} into {output} ({} blocks, .stand container)\n",
            s.trees, s.blocks
        ))
    }
}

/// Pages trees out of a `.stand` container by index range without loading
/// the whole stand (one decoded block in memory at a time).
fn cmd_stand_cat(a: &ParsedArgs) -> Result<String, CliError> {
    let Some(path) = a
        .positional
        .get(2)
        .map(|s| s.as_str())
        .or_else(|| a.get("input"))
    else {
        return err("stand cat requires a container path: gentrius stand cat FILE.stand [--from N] [--count M]");
    };
    let mut c = Container::open(Path::new(path)).map_err(|e| CliError(format!("{path}: {e}")))?;
    let from: u64 = a
        .get_parsed("from", 0u64)
        .map_err(|e| CliError(e.to_string()))?;
    let count: u64 = a
        .get_parsed("count", u64::MAX)
        .map_err(|e| CliError(e.to_string()))?;
    // `for_each_newick` treats an empty [from, from+count) range as a
    // silent no-op, which is right for `--count 0` but would let a --from
    // past the end masquerade as an empty container. Surface it instead.
    let len = c.len();
    if from > 0 && from >= len {
        return err(format!(
            "{path}: --from {from} is out of range (container holds {len} trees)"
        ));
    }
    let mut out = String::new();
    c.for_each_newick(from, from.saturating_add(count), |_, nwk| {
        out.push_str(nwk);
        out.push('\n');
        Ok(())
    })
    .map_err(|e| CliError(format!("{path}: {e}")))?;
    Ok(out)
}

fn problem_run_serial<S: gentrius_core::StandSink>(
    problem: &StandProblem,
    config: &GentriusConfig,
    sink: &mut S,
) -> Result<gentrius_core::RunResult, CliError> {
    gentrius_core::run_serial(problem, config, sink).map_err(|e| CliError(e.to_string()))
}

fn cmd_induced(a: &ParsedArgs) -> Result<String, CliError> {
    let (Some(sp), Some(pp)) = (a.get("species"), a.get("pam")) else {
        return err("induced requires --species FILE and --pam FILE");
    };
    let sp_text = std::fs::read_to_string(sp).map_err(|e| CliError(format!("{sp}: {e}")))?;
    let pam_text = std::fs::read_to_string(pp).map_err(|e| CliError(format!("{pp}: {e}")))?;
    let (mut taxa, _) =
        parse_forest(sp_text.lines().take(1)).map_err(|e| CliError(e.to_string()))?;
    let pam = Pam::parse_text(&pam_text, &mut taxa)?;
    let line = sp_text.lines().next().unwrap_or_default();
    let species = phylo::newick::parse_newick(line, &taxa).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    for sub in pam.induced_subtrees(&species) {
        writeln!(out, "{}", to_newick(&sub, &taxa)).unwrap();
    }
    Ok(out)
}

fn cmd_gen(a: &ParsedArgs) -> Result<String, CliError> {
    if let Some(name) = a.get("scenario") {
        if name == "list" {
            let mut out = String::from("available scenarios:\n");
            for s in gentrius_datagen::scenario::REGISTRY {
                writeln!(out, "  {:<20} {}", s.key, s.role).unwrap();
            }
            return Ok(out);
        }
        let dataset = gentrius_datagen::scenario::scenario_by_key(name)
            .ok_or_else(|| CliError(format!("unknown scenario '{name}' (try --scenario list)")))?;
        let text = dataset.to_text();
        return if let Some(path) = a.get("output") {
            std::fs::write(path, &text).map_err(|e| CliError(format!("{path}: {e}")))?;
            Ok(format!(
                "wrote scenario {} ({} taxa, {} loci) to {path}\n",
                dataset.name,
                dataset.num_taxa(),
                dataset.num_loci()
            ))
        } else {
            Ok(text)
        };
    }
    let kind = a.get("kind").unwrap_or("sim");
    let seed: u64 = a
        .get_parsed("seed", 42u64)
        .map_err(|e| CliError(e.to_string()))?;
    let index: u64 = a
        .get_parsed("index", 0u64)
        .map_err(|e| CliError(e.to_string()))?;
    let scale = a.get("scale").unwrap_or("scaled");
    let dataset = match (kind, scale) {
        ("sim", "paper") => simulated_dataset(&SimulatedParams::paper(), seed, index),
        ("sim", _) => simulated_dataset(&SimulatedParams::scaled(), seed, index),
        ("emp", "paper") => empirical_dataset(&EmpiricalParams::paper(), seed, index),
        ("emp", _) => empirical_dataset(&EmpiricalParams::scaled(), seed, index),
        _ => return err(format!("unknown --kind '{kind}' (sim|emp)")),
    };
    let text = dataset.to_text();
    if let Some(path) = a.get("output") {
        std::fs::write(path, &text).map_err(|e| CliError(format!("{path}: {e}")))?;
        Ok(format!(
            "wrote {} ({} taxa, {} loci, {:.1}% missing) to {path}\n",
            dataset.name,
            dataset.num_taxa(),
            dataset.num_loci(),
            100.0 * dataset.missing_fraction()
        ))
    } else {
        Ok(text)
    }
}

fn cmd_sim(a: &ParsedArgs) -> Result<String, CliError> {
    let (_taxa, problem) = load_problem(a)?;
    let config = config_from(a)?;
    let threads = a
        .get_list("threads")
        .map_err(|e| CliError(e.to_string()))?
        .unwrap_or_else(|| vec![1, 2, 4, 8, 12, 16]);
    let max_ticks = match a.get("max-ticks") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| CliError(format!("--max-ticks: bad number '{v}'")))?,
        ),
    };

    let mut out = String::new();
    writeln!(
        out,
        "virtual-time simulation ({} constraints, {} taxa)",
        problem.constraints().len(),
        problem.num_taxa()
    )
    .unwrap();
    writeln!(
        out,
        "{:>7} {:>12} {:>10} {:>10} {:>8} {:>9} {:>7}",
        "threads", "ticks", "trees", "states", "stolen", "speedup", "asp"
    )
    .unwrap();
    let mut serial = None;
    for &t in &threads {
        let mut sc = SimConfig::with_threads(t as usize);
        sc.stealing = !a.has("no-steal");
        sc.max_ticks = max_ticks;
        sc.trace = a.has("trace");
        let r = simulate(&problem, &config, &sc).map_err(|e| CliError(e.to_string()))?;
        let (sp, asp) = match &serial {
            None => (1.0, 1.0),
            Some(s) => (r.speedup_vs(s), r.adapted_speedup_vs(s)),
        };
        writeln!(
            out,
            "{:>7} {:>12} {:>10} {:>10} {:>8} {:>9.2} {:>7.2}",
            t,
            r.makespan,
            r.stats.stand_trees,
            r.stats.intermediate_states,
            r.tasks_stolen,
            sp,
            asp
        )
        .unwrap();
        if let Some(tl) = &r.timeline {
            out.push_str(&tl.render(r.makespan, 64));
        }
        if serial.is_none() {
            serial = Some(r);
        }
    }
    Ok(out)
}

fn cmd_consensus(a: &ParsedArgs) -> Result<String, CliError> {
    let (taxa, problem) = load_problem(a)?;
    let config = config_from(a)?;
    let min_support: f64 = a
        .get_parsed("min-support", 0.5f64)
        .map_err(|e| CliError(e.to_string()))?;
    let mut sink = gentrius_core::SplitSupportSink::new();
    let r = gentrius_core::run_serial(&problem, &config, &mut sink)
        .map_err(|e| CliError(e.to_string()))?;
    let summary = sink.finish();
    let mut out = String::new();
    writeln!(out, "stand trees analysed: {}", summary.num_trees()).unwrap();
    writeln!(out, "status: {}", stop_str(r.stop)).unwrap();
    if summary.num_trees() == 0 {
        writeln!(out, "empty stand: no consensus").unwrap();
        return Ok(out);
    }
    if let Some(strict) = summary.strict_consensus() {
        writeln!(out, "strict consensus:   {}", to_newick(&strict, &taxa)).unwrap();
    }
    if let Some(maj) = summary.majority_consensus() {
        writeln!(out, "majority consensus: {}", to_newick(&maj, &taxa)).unwrap();
    }
    writeln!(out, "splits with support >= {min_support:.2}:").unwrap();
    for (split, support) in summary.frequencies().supports() {
        if support < min_support {
            break;
        }
        let names: Vec<&str> = split
            .side()
            .iter()
            .map(|t| taxa.name(phylo::TaxonId(t as u32)))
            .collect();
        writeln!(out, "  {:>6.1}%  {{{}}}", 100.0 * support, names.join(",")).unwrap();
    }
    Ok(out)
}

/// The §IV verification protocol as a command: serial, threaded and
/// simulated engines must produce identical counters (and, for small
/// inputs, the stand must equal the brute-force ground truth).
fn cmd_verify(a: &ParsedArgs) -> Result<String, CliError> {
    let (taxa, problem) = load_problem(a)?;
    let config = config_from(a)?;
    let threads: usize = a
        .get_parsed("threads", 2usize)
        .map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    writeln!(out, "mapping: {}", config.mapping).unwrap();

    let mut serial_sink = CollectNewick::with_cap(&taxa, 2_000_000);
    let serial = gentrius_core::run_serial(&problem, &config, &mut serial_sink)
        .map_err(|e| CliError(e.to_string()))?;
    writeln!(
        out,
        "serial:    trees={} states={} dead_ends={} ({})",
        serial.stats.stand_trees,
        serial.stats.intermediate_states,
        serial.stats.dead_ends,
        stop_str(serial.stop)
    )
    .unwrap();

    // `--threads N` is honored as given (the engine supports a single
    // worker); it used to be silently bumped to 2.
    let pcfg = ParallelConfig::with_threads(threads.max(1));
    let (par, par_sinks) = run_parallel_with_sinks(&problem, &config, &pcfg, |_| {
        CollectNewick::with_cap(&taxa, 2_000_000)
    })
    .map_err(|e| CliError(e.to_string()))?;
    writeln!(
        out,
        "parallel:  trees={} states={} dead_ends={} ({} threads)",
        par.stats.stand_trees, par.stats.intermediate_states, par.stats.dead_ends, pcfg.threads
    )
    .unwrap();

    let sim = simulate(&problem, &config, &SimConfig::with_threads(16))
        .map_err(|e| CliError(e.to_string()))?;
    writeln!(
        out,
        "simulated: trees={} states={} dead_ends={} (16 virtual threads)",
        sim.stats.stand_trees, sim.stats.intermediate_states, sim.stats.dead_ends
    )
    .unwrap();

    if !serial.complete() {
        writeln!(
            out,
            "verdict: SKIPPED — a stopping rule fired; counters are only              comparable for complete enumerations (raise the limits)"
        )
        .unwrap();
        return Ok(out);
    }

    let counters_ok = serial.stats == par.stats && serial.stats == sim.stats;
    let serial_set = canonical_stand_set([serial_sink.out]);
    let par_set = canonical_stand_set(par_sinks.into_iter().map(|s| s.out));
    let stands_ok = serial_set == par_set;
    writeln!(out, "counters identical: {counters_ok}").unwrap();
    writeln!(
        out,
        "stand sets identical (serial vs parallel): {stands_ok}"
    )
    .unwrap();

    let mut oracle_ok = true;
    if problem.num_taxa() <= gentrius_core::oracle::MAX_BRUTE_FORCE_TAXA {
        let brute = gentrius_core::oracle::brute_force_stand(&problem, &taxa);
        oracle_ok = brute == serial_set;
        writeln!(out, "brute-force ground truth identical: {oracle_ok}").unwrap();
    } else {
        writeln!(
            out,
            "brute-force check skipped ({} taxa > {} limit)",
            problem.num_taxa(),
            gentrius_core::oracle::MAX_BRUTE_FORCE_TAXA
        )
        .unwrap();
    }
    writeln!(
        out,
        "verdict: {}",
        if counters_ok && stands_ok && oracle_ok {
            "PASS"
        } else {
            "FAIL"
        }
    )
    .unwrap();
    Ok(out)
}

/// The SUPERB baseline: count the terrace without enumerating (requires a
/// comprehensive taxon — the §I prior-art limitation Gentrius removes).
fn cmd_superb(a: &ParsedArgs) -> Result<String, CliError> {
    let (taxa, problem) = load_problem(a)?;
    let mut out = String::new();
    match gentrius_superb::comprehensive_taxon(&problem) {
        Some(r) => writeln!(out, "comprehensive taxon: {}", taxa.name(r)).unwrap(),
        None => {
            writeln!(
                out,
                "no comprehensive taxon: SUPERB cannot root this input                  (use 'gentrius stand' — Gentrius has no such requirement)"
            )
            .unwrap();
            return Ok(out);
        }
    }
    match gentrius_superb::superb_count(&problem) {
        Ok(n) => writeln!(out, "terrace size (SUPERB): {n}").unwrap(),
        Err(e) => writeln!(out, "SUPERB failed: {e}").unwrap(),
    }
    Ok(out)
}

/// Scores trees against a partitioned supermatrix: per-partition Fitch
/// parsimony (default) or JC69 log-likelihood (`--likelihood`). Trees on
/// one stand print identical rows — the terrace, on the command line.
fn cmd_score(a: &ParsedArgs) -> Result<String, CliError> {
    let (Some(mp), Some(pp), Some(tp)) = (a.get("matrix"), a.get("partitions"), a.get("trees"))
    else {
        return err("score requires --matrix FILE --partitions FILE --trees FILE");
    };
    let matrix_text = std::fs::read_to_string(mp).map_err(|e| CliError(format!("{mp}: {e}")))?;
    let parts_text = std::fs::read_to_string(pp).map_err(|e| CliError(format!("{pp}: {e}")))?;
    let trees_text = std::fs::read_to_string(tp).map_err(|e| CliError(format!("{tp}: {e}")))?;
    let mut taxa = TaxonSet::new();
    let matrix = gentrius_msa::Supermatrix::parse_phylip(&matrix_text, &parts_text, &mut taxa)?;
    let mut out = String::new();
    writeln!(
        out,
        "supermatrix: {} taxa x {} sites, {} partitions",
        matrix.universe(),
        matrix.sites(),
        matrix.partitions().len()
    )
    .unwrap();
    let branch_len: f64 = a
        .get_parsed("branch-len", 0.1f64)
        .map_err(|e| CliError(e.to_string()))?;
    let use_lik = a.has("likelihood");
    writeln!(
        out,
        "{:<8} {:>40} {:>14}",
        "tree",
        if use_lik {
            "per-partition log-likelihood"
        } else {
            "per-partition parsimony"
        },
        "total"
    )
    .unwrap();
    for (i, line) in trees_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let tree = phylo::newick::parse_newick(line, &taxa)
            .map_err(|e| CliError(format!("tree {}: {e}", i + 1)))?;
        if use_lik {
            let ll = gentrius_msa::log_likelihood(
                &tree,
                &matrix,
                branch_len,
                gentrius_msa::MissingMode::Restrict,
            );
            let total: f64 = ll.iter().sum();
            let cells: Vec<String> = ll.iter().map(|x| format!("{x:.2}")).collect();
            writeln!(out, "#{:<7} {:>40} {:>14.2}", i + 1, cells.join(" "), total).unwrap();
        } else {
            let s = gentrius_msa::score(&tree, &matrix, gentrius_msa::MissingMode::Restrict);
            let cells: Vec<String> = s.per_partition.iter().map(|x| x.to_string()).collect();
            writeln!(
                out,
                "#{:<7} {:>40} {:>14}",
                i + 1,
                cells.join(" "),
                s.total()
            )
            .unwrap();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_strs(&["help"]).unwrap().contains("USAGE"));
        assert!(run_strs(&[]).unwrap().contains("USAGE"));
        assert!(run_strs(&["bogus"]).is_err());
    }

    #[test]
    fn stand_from_trees_file() {
        let p = write_tmp("quartets.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let out = run_strs(&["stand", "--trees", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("stand trees:"), "{out}");
        assert!(out.contains("complete enumeration"), "{out}");
    }

    #[test]
    fn stand_parallel_matches_serial() {
        let p = write_tmp("par.nwk", "((A,B),(C,D));\n((A,E),(F,G));\n");
        let s1 = run_strs(&["stand", "--trees", p.to_str().unwrap()]).unwrap();
        let s2 = run_strs(&["stand", "--trees", p.to_str().unwrap(), "--threads", "2"]).unwrap();
        let grab = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("stand trees:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(grab(&s1), grab(&s2));
    }

    #[test]
    fn mapping_flag_selects_engine_and_rejects_junk() {
        let p = write_tmp("mapping.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let path = p.to_str().unwrap();
        let default = run_strs(&["stand", "--trees", path]).unwrap();
        assert!(default.contains("mapping: edge-indexed"), "{default}");
        let grab = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("stand trees:"))
                .unwrap()
                .to_string()
        };
        for mode in ["recompute", "incremental", "edge-indexed"] {
            let out = run_strs(&["stand", "--trees", path, "--mapping", mode]).unwrap();
            assert!(out.contains(&format!("mapping: {mode}")), "{out}");
            assert_eq!(grab(&out), grab(&default), "mode {mode}");
        }
        // Legacy alias still works and still means incremental.
        let legacy = run_strs(&["stand", "--trees", path, "--incremental"]).unwrap();
        assert!(legacy.contains("mapping: incremental"), "{legacy}");
        assert!(run_strs(&["stand", "--trees", path, "--mapping", "hash"]).is_err());
    }

    #[test]
    fn stand_with_species_and_pam() {
        let sp = write_tmp("species.nwk", "((A,B),((C,D),(E,F)));\n");
        let pam = write_tmp("matrix.pam", "A 11\nB 11\nC 11\nD 11\nE 01\nF 01\n");
        let out = run_strs(&[
            "stand",
            "--species",
            sp.to_str().unwrap(),
            "--pam",
            pam.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("stand trees:"), "{out}");
    }

    #[test]
    fn induced_prints_per_locus_trees() {
        let sp = write_tmp("species2.nwk", "((A,B),((C,D),(E,F)));\n");
        let pam = write_tmp("matrix2.pam", "A 11\nB 11\nC 11\nD 10\nE 01\nF 11\n");
        let out = run_strs(&[
            "induced",
            "--species",
            sp.to_str().unwrap(),
            "--pam",
            pam.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().all(|l| l.ends_with(';')));
    }

    #[test]
    fn gen_roundtrips_through_stand() {
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.join("gen1.dataset");
        let msg = run_strs(&[
            "gen",
            "--kind",
            "sim",
            "--seed",
            "5",
            "--index",
            "1",
            "--output",
            ds.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("wrote sim-data-1"), "{msg}");
        let out = run_strs(&[
            "stand",
            "--dataset",
            ds.to_str().unwrap(),
            "--max-states",
            "200000",
            "--max-trees",
            "100000",
        ])
        .unwrap();
        assert!(out.contains("stand trees:"), "{out}");
    }

    #[test]
    fn sim_prints_speedup_table() {
        let p = write_tmp(
            "simtab.nwk",
            "((A,B),(C,D));\n((A,E),(F,G));\n((C,F),(H,I));\n",
        );
        let out = run_strs(&["sim", "--trees", p.to_str().unwrap(), "--threads", "1,2,4"]).unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert_eq!(
            out.lines()
                .filter(|l| l.trim().starts_with(char::is_numeric))
                .count(),
            3
        );
    }

    #[test]
    fn consensus_subcommand_reports_supports() {
        let p = write_tmp("cons.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let out = run_strs(&[
            "consensus",
            "--trees",
            p.to_str().unwrap(),
            "--min-support",
            "0.3",
        ])
        .unwrap();
        assert!(out.contains("strict consensus:"), "{out}");
        assert!(out.contains("majority consensus:"), "{out}");
        assert!(out.contains('%'), "{out}");
    }

    #[test]
    fn verify_subcommand_passes_on_small_instance() {
        let p = write_tmp("verify.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let out = run_strs(&["verify", "--trees", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("counters identical: true"), "{out}");
        assert!(
            out.contains("brute-force ground truth identical: true"),
            "{out}"
        );
        assert!(out.contains("verdict: PASS"), "{out}");
    }

    #[test]
    fn score_subcommand_parsimony_and_likelihood() {
        let m = write_tmp("sc.phy", "4 6\nA AACCAA\nB AACCAC\nC CCAAGA\nD CCAAGC\n");
        let parts = write_tmp("sc.part", "DNA, g1 = 1-3\nDNA, g2 = 4-6\n");
        let trees = write_tmp("sc.nwk", "((A,B),(C,D));\n((A,C),(B,D));\n");
        let out = run_strs(&[
            "score",
            "--matrix",
            m.to_str().unwrap(),
            "--partitions",
            parts.to_str().unwrap(),
            "--trees",
            trees.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("per-partition parsimony"), "{out}");
        assert_eq!(out.lines().filter(|l| l.starts_with('#')).count(), 2);
        let ll = run_strs(&[
            "score",
            "--matrix",
            m.to_str().unwrap(),
            "--partitions",
            parts.to_str().unwrap(),
            "--trees",
            trees.to_str().unwrap(),
            "--likelihood",
        ])
        .unwrap();
        assert!(ll.contains("log-likelihood"), "{ll}");
    }

    #[test]
    fn gen_scenario_registry() {
        let out = run_strs(&["gen", "--scenario", "list"]).unwrap();
        assert!(out.contains("plateau-5"), "{out}");
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.join("trap.dataset");
        let msg = run_strs(&[
            "gen",
            "--scenario",
            "trap",
            "--output",
            ds.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("wrote scenario"), "{msg}");
        assert!(run_strs(&["gen", "--scenario", "bogus"]).is_err());
    }

    #[test]
    fn sim_trace_prints_schedule() {
        let p = write_tmp("trace.nwk", "((A,B),(C,D));\n((A,E),(F,G));\n");
        let out = run_strs(&[
            "sim",
            "--trees",
            p.to_str().unwrap(),
            "--threads",
            "1,4",
            "--trace",
        ])
        .unwrap();
        assert!(out.contains("w00 ["), "{out}");
        assert!(out.contains('%'), "{out}");
    }

    #[test]
    fn nexus_tree_files_are_autodetected() {
        let p = write_tmp(
            "in.nex",
            "#NEXUS\nBEGIN TREES;\nTREE a = ((A,B),(C,D));\nTREE b = ((C,D),(E,F));\nEND;\n",
        );
        let out = run_strs(&["stand", "--trees", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("2 constraint trees, 6 taxa"), "{out}");
        assert!(out.contains("complete enumeration"), "{out}");
    }

    #[test]
    fn superb_subcommand_counts_and_reports_boundary() {
        let p = write_tmp("superb1.nwk", "((R,A),(B,C));\n((R,B),(C,D));\n");
        let out = run_strs(&["superb", "--trees", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("comprehensive taxon: R"), "{out}");
        assert!(out.contains("terrace size (SUPERB):"), "{out}");
        let q = write_tmp("superb2.nwk", "((A,B),(C,D));\n((E,F),(G,H));\n");
        let out2 = run_strs(&["superb", "--trees", q.to_str().unwrap()]).unwrap();
        assert!(out2.contains("no comprehensive taxon"), "{out2}");
    }

    #[test]
    fn stand_metrics_json_export_is_valid_and_versioned() {
        let p = write_tmp("metrics.nwk", "((A,B),(C,D));\n((A,E),(F,G));\n");
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let mj = dir.join("run_metrics.json");
        // --threads 1 must also work: the flag routes through the
        // parallel engine with a single worker.
        let out = run_strs(&[
            "stand",
            "--trees",
            p.to_str().unwrap(),
            "--threads",
            "1",
            "--metrics-json",
            mj.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote run metrics (schema v2)"), "{out}");
        let text = std::fs::read_to_string(&mj).unwrap();
        gentrius_parallel::obs::json::validate(&text).unwrap();
        assert!(
            text.starts_with("{\"schema\":\"gentrius-run-metrics\",\"version\":2,"),
            "{text}"
        );
        assert!(text.contains("\"threads\":1"), "{text}");
        assert!(text.contains("\"monitor\":{\"ticks\":"), "{text}");
    }

    #[test]
    fn stand_tuning_flags_parse_and_preserve_the_stand_set() {
        let p = write_tmp(
            "tuning.nwk",
            "((A,B),(C,D));\n((A,E),(F,G));\n((C,F),(H,I));\n",
        );
        let base = run_strs(&["stand", "--trees", p.to_str().unwrap(), "--print-trees"]).unwrap();
        let tuned = run_strs(&[
            "stand",
            "--trees",
            p.to_str().unwrap(),
            "--threads",
            "2",
            "--print-trees",
            "--no-adaptive-split",
            "--stop-poll-stride",
            "8",
            "--emit-batch",
            "4",
            "--coarse-flush",
        ])
        .unwrap();
        // The tuning knobs change scheduling and buffering, never results:
        // the printed stand set (every line ending in ';') must match the
        // serial default exactly.
        let trees = |s: &str| {
            s.lines()
                .filter(|l| l.ends_with(';'))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(trees(&base), trees(&tuned));
        assert!(tuned.contains("scheduler: "), "{tuned}");
    }

    #[test]
    fn stand_trace_json_spans_match_tasks_executed() {
        let p = write_tmp(
            "tracejson.nwk",
            "((A,B),(C,D));\n((A,E),(F,G));\n((C,F),(H,I));\n",
        );
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let mj = dir.join("trace_metrics.json");
        let tj = dir.join("trace_events.json");
        let out = run_strs(&[
            "stand",
            "--trees",
            p.to_str().unwrap(),
            "--threads",
            "3",
            "--metrics-json",
            mj.to_str().unwrap(),
            "--trace-json",
            tj.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote chrome trace ("), "{out}");
        let trace = std::fs::read_to_string(&tj).unwrap();
        gentrius_parallel::obs::json::validate(&trace).unwrap();
        assert!(trace.contains("\"traceEvents\":["), "{trace}");
        // One named track per worker…
        assert_eq!(trace.matches("\"thread_name\"").count(), 3);
        // …and exactly one "X" (complete) event per executed task, as
        // counted by the metrics export of the same run.
        let metrics = std::fs::read_to_string(&mj).unwrap();
        let tasks: u64 = metrics
            .match_indices("\"tasks_executed\":")
            .map(|(i, pat)| {
                metrics[i + pat.len()..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert!(tasks >= 1);
        assert_eq!(trace.matches("\"ph\":\"X\"").count() as u64, tasks);
    }

    #[test]
    fn verify_honors_a_single_thread() {
        let p = write_tmp("verify1.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let out = run_strs(&["verify", "--trees", p.to_str().unwrap(), "--threads", "1"]).unwrap();
        assert!(out.contains("(1 threads)"), "{out}");
        assert!(out.contains("verdict: PASS"), "{out}");
    }

    #[test]
    fn stand_reports_truncation_when_collect_cap_hit() {
        let p = write_tmp("trunc.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let path = p.to_str().unwrap();
        // Uncapped baseline: how many trees the stand actually holds.
        let full = run_strs(&["stand", "--trees", path, "--print-trees"]).unwrap();
        let total = full.lines().filter(|l| l.ends_with(';')).count();
        assert!(
            total > 2,
            "need a stand with more than 2 trees, got {total}"
        );
        assert!(!full.contains("truncated:"), "{full}");

        let out = run_strs(&[
            "stand",
            "--trees",
            path,
            "--print-trees",
            "--max-collect",
            "2",
        ])
        .unwrap();
        assert!(
            out.contains(&format!(
                "truncated: true (collected 2 of {total} stand trees)"
            )),
            "{out}"
        );
        assert!(
            out.contains("warning: in-memory collection capped"),
            "{out}"
        );
        assert_eq!(out.lines().filter(|l| l.ends_with(';')).count(), 2, "{out}");

        // File output is honest about the shortfall too.
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let o = dir.join("trunc.out.nwk");
        let out = run_strs(&[
            "stand",
            "--trees",
            path,
            "--output",
            o.to_str().unwrap(),
            "--max-collect",
            "2",
        ])
        .unwrap();
        assert!(
            out.contains(&format!("wrote 2 of {total} trees to")),
            "{out}"
        );
        let written = std::fs::read_to_string(&o).unwrap();
        assert_eq!(written.lines().count(), 2);
    }

    #[test]
    fn stand_container_output_roundtrips_through_cat() {
        let p = write_tmp("cont.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let path = p.to_str().unwrap();
        let expected: Vec<String> = run_strs(&["stand", "--trees", path, "--print-trees"])
            .unwrap()
            .lines()
            .filter(|l| l.ends_with(';'))
            .map(str::to_string)
            .collect();

        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("cont.stand");
        let cpath = cont.to_str().unwrap();
        let out = run_strs(&["stand", "--trees", path, "--output", cpath]).unwrap();
        assert!(out.contains(".stand container"), "{out}");
        assert!(
            out.contains(&format!("wrote {} trees to {cpath}", expected.len())),
            "{out}"
        );
        // No in-memory cap applies on the streaming path.
        assert!(!out.contains("truncated:"), "{out}");

        // `stand cat` reproduces the exact canonical Newick set.
        let cat = run_strs(&["stand", "cat", cpath]).unwrap();
        let mut got: Vec<String> = cat.lines().map(str::to_string).collect();
        got.sort();
        assert_eq!(got, expected);

        // Paging: --from/--count slice the container's native order.
        let page = run_strs(&["stand", "cat", cpath, "--from", "1", "--count", "2"]).unwrap();
        assert_eq!(page.lines().count(), 2);
        assert_eq!(page.lines().next(), cat.lines().nth(1));

        // --print-trees with a container output reads back from the file.
        let printed =
            run_strs(&["stand", "--trees", path, "--output", cpath, "--print-trees"]).unwrap();
        let shown: Vec<String> = printed
            .lines()
            .filter(|l| l.ends_with(';'))
            .map(str::to_string)
            .collect();
        assert_eq!(shown, expected);
    }

    #[test]
    fn stand_container_parallel_merges_segments() {
        let p = write_tmp("contpar.nwk", "((A,B),(C,D));\n((A,E),(F,G));\n");
        let path = p.to_str().unwrap();
        let expected: Vec<String> = run_strs(&["stand", "--trees", path, "--print-trees"])
            .unwrap()
            .lines()
            .filter(|l| l.ends_with(';'))
            .map(str::to_string)
            .collect();

        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("contpar.stand");
        let cpath = cont.to_str().unwrap();
        let out = run_strs(&[
            "stand",
            "--trees",
            path,
            "--threads",
            "3",
            "--output",
            cpath,
        ])
        .unwrap();
        assert!(out.contains(".stand container"), "{out}");
        // Per-context segments are merged into the final file and deleted.
        for i in 0..4 {
            assert!(
                !dir.join(format!("contpar.stand.seg{i}")).exists(),
                "segment {i} left behind"
            );
        }
        let cat = run_strs(&["stand", "cat", cpath]).unwrap();
        let mut got: Vec<String> = cat.lines().map(str::to_string).collect();
        got.sort();
        assert_eq!(got, expected, "parallel container must hold the same stand");
    }

    #[test]
    fn stand_export_converts_both_directions() {
        let p = write_tmp("exp.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let path = p.to_str().unwrap();
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("exp.stand");
        let back = dir.join("exp.back.nwk");
        let cpath = cont.to_str().unwrap();

        // Enumerate into a container, export to Newick, re-pack to a
        // container, and export again: the tree list must be stable.
        run_strs(&["stand", "--trees", path, "--output", cpath]).unwrap();
        let msg = run_strs(&[
            "stand",
            "export",
            "--input",
            cpath,
            "--output",
            back.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("exported"), "{msg}");
        let first = std::fs::read_to_string(&back).unwrap();
        assert!(first.lines().count() > 0);
        assert!(first.lines().all(|l| l.ends_with(';')));

        let cont2 = dir.join("exp2.stand");
        let msg = run_strs(&[
            "stand",
            "export",
            "--input",
            back.to_str().unwrap(),
            "--output",
            cont2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("packed"), "{msg}");
        let cat = run_strs(&["stand", "cat", cont2.to_str().unwrap()]).unwrap();
        // Canonical Newick depends on taxon interning order, which differs
        // between the two files; compare tree-by-tree under one universe.
        let (taxa, t1) = parse_forest(first.lines()).unwrap();
        let canon1: Vec<String> = t1.iter().map(|t| to_newick(t, &taxa)).collect();
        let canon2: Vec<String> = cat
            .lines()
            .map(|l| to_newick(&phylo::newick::parse_newick(l, &taxa).unwrap(), &taxa))
            .collect();
        assert_eq!(
            canon2, canon1,
            "Newick -> container -> Newick preserves every tree in order"
        );
    }

    #[test]
    fn stand_cat_rejects_non_containers() {
        let p = write_tmp("notacont.nwk", "((A,B),(C,D));\n");
        assert!(run_strs(&["stand", "cat", p.to_str().unwrap()]).is_err());
        assert!(run_strs(&["stand", "cat"]).is_err());
    }

    #[test]
    fn stand_cat_from_past_end_is_a_typed_error() {
        let p = write_tmp("catrange.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("catrange.stand");
        let cpath = cont.to_str().unwrap();
        run_strs(&["stand", "--trees", p.to_str().unwrap(), "--output", cpath]).unwrap();
        let all = run_strs(&["stand", "cat", cpath]).unwrap();
        let len = all.lines().count();
        assert!(len > 0);

        // --from one past the last tree (and far past it) is an error
        // naming the range, not a silent empty page.
        for from in [len, len + 100] {
            let err = run_strs(&["stand", "cat", cpath, "--from", &from.to_string()])
                .expect_err("out-of-range --from must fail");
            assert!(err.0.contains("out of range"), "{err}");
            assert!(err.0.contains(&format!("holds {len} trees")), "{err}");
        }
        // --count 0 and a --from at the boundary *via count* stay quiet
        // successes: the requested page is genuinely empty.
        assert_eq!(
            run_strs(&["stand", "cat", cpath, "--count", "0"]).unwrap(),
            ""
        );
        let last = run_strs(&["stand", "cat", cpath, "--from", &(len - 1).to_string()]).unwrap();
        assert_eq!(last.lines().count(), 1);
    }

    #[test]
    fn stand_container_precleans_stale_segments_and_checkpoint() {
        let p = write_tmp("stale.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("stale.stand");
        let cpath = cont.to_str().unwrap();
        // Debris a crashed higher-thread-count run could leave behind:
        // plain segments, generation-namespaced segments, a checkpoint.
        let seg7 = dir.join("stale.stand.seg7");
        let gseg = dir.join("stale.stand.g3.seg1");
        let ckpt = dir.join("stale.standckpt");
        std::fs::write(&seg7, b"junk").unwrap();
        std::fs::write(&gseg, b"junk").unwrap();
        std::fs::write(&ckpt, b"junk").unwrap();

        let out = run_strs(&["stand", "--trees", p.to_str().unwrap(), "--output", cpath]).unwrap();
        assert!(!seg7.exists(), "stale .seg7 survived the run");
        assert!(!gseg.exists(), "stale .g3.seg1 survived the run");
        assert!(!ckpt.exists(), "stale checkpoint survived a fresh run");
        assert!(out.contains("removed 2 stale segment file(s)"), "{out}");
        assert!(out.contains("removed stale checkpoint"), "{out}");
        // The run itself still completes and writes the container.
        assert!(out.contains(".stand container"), "{out}");
    }

    #[test]
    fn failed_merge_leaves_no_segment_files() {
        let p = write_tmp("segleak.nwk", "((A,B),(C,D));\n((A,E),(F,G));\n");
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        // A directory squatting on the output path makes the final
        // merge_segments fail after every segment was written.
        let cont = dir.join("segleak.stand");
        let _ = std::fs::remove_file(&cont);
        let _ = std::fs::remove_dir_all(&cont);
        std::fs::create_dir_all(&cont).unwrap();
        let cpath = cont.to_str().unwrap();
        let err = run_strs(&[
            "stand",
            "--trees",
            p.to_str().unwrap(),
            "--threads",
            "3",
            "--output",
            cpath,
        ])
        .expect_err("merging over a directory must fail");
        assert!(err.0.contains("segleak.stand"), "{err}");
        for i in 0..4 {
            let seg = dir.join(format!("segleak.stand.seg{i}"));
            assert!(!seg.exists(), "segment {i} leaked after a failed merge");
        }
        std::fs::remove_dir_all(&cont).unwrap();
    }

    #[test]
    fn checkpoint_every_validates_its_context() {
        let p = write_tmp("ckflags.nwk", "((A,B),(C,D));\n");
        let path = p.to_str().unwrap();
        // Requires a container output.
        let err = run_strs(&["stand", "--trees", path, "--checkpoint-every", "1"]).unwrap_err();
        assert!(err.0.contains("--output FILE.stand"), "{err}");
        // Requires a positive interval.
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("ckflags.stand");
        for bad in ["0", "-1", "bogus"] {
            assert!(
                run_strs(&[
                    "stand",
                    "--trees",
                    path,
                    "--output",
                    cont.to_str().unwrap(),
                    "--checkpoint-every",
                    bad,
                ])
                .is_err(),
                "--checkpoint-every {bad} must be rejected"
            );
        }
    }

    #[test]
    fn checkpointed_run_matches_clean_run_and_retires_sidecars() {
        let p = write_tmp(
            "ckdiff.nwk",
            "((A,B),(C,D));\n((A,E),(F,G));\n((C,F),(H,I));\n",
        );
        let path = p.to_str().unwrap();
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let clean = dir.join("ckdiff-clean.stand");
        let ck = dir.join("ckdiff-ck.stand");
        run_strs(&[
            "stand",
            "--trees",
            path,
            "--output",
            clean.to_str().unwrap(),
        ])
        .unwrap();
        // A 1 ms cadence forces many pause/checkpoint/re-inject cycles on
        // this ~5000-tree instance.
        let out = run_strs(&[
            "stand",
            "--trees",
            path,
            "--threads",
            "2",
            "--output",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "0.001",
        ])
        .unwrap();
        assert!(out.contains("complete enumeration"), "{out}");
        // All sidecars retired on completion.
        assert!(!dir.join("ckdiff-ck.standckpt").exists());
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("ckdiff-ck.stand.") && n.contains("seg"))
            .collect();
        assert!(leftovers.is_empty(), "segment files leaked: {leftovers:?}");

        let sort_lines = |s: String| {
            let mut v: Vec<String> = s.lines().map(str::to_string).collect();
            v.sort();
            v
        };
        let want = sort_lines(run_strs(&["stand", "cat", clean.to_str().unwrap()]).unwrap());
        let got = sort_lines(run_strs(&["stand", "cat", ck.to_str().unwrap()]).unwrap());
        assert!(!want.is_empty());
        assert_eq!(got, want, "checkpointed container diverged from clean run");
    }

    #[test]
    fn time_limited_run_writes_checkpoint_and_resume_completes() {
        let p = write_tmp(
            "cktime.nwk",
            "((A,B),(C,D));\n((A,E),(F,G));\n((C,F),(H,I));\n((B,I),(E,J));\n",
        );
        let path = p.to_str().unwrap();
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("cktime.stand");
        let cpath = cont.to_str().unwrap();
        let ckpt = dir.join("cktime.standckpt");
        // Self-clean: a previous suite run legitimately leaves the
        // completed container behind.
        let _ = std::fs::remove_file(&cont);
        let _ = std::fs::remove_file(&ckpt);
        // ~0.11 s budget on a ~0.8 s (debug) instance: the time limit
        // fires mid-run and the frontier lands in the checkpoint instead
        // of being lost.
        let out = run_strs(&[
            "stand",
            "--trees",
            path,
            "--threads",
            "2",
            "--output",
            cpath,
            "--checkpoint-every",
            "10",
            "--max-hours",
            "0.00003",
        ])
        .unwrap();
        assert!(out.contains("stopped: time limit"), "{out}");
        assert!(out.contains("stand resume"), "{out}");
        assert!(ckpt.exists(), "time-limited run left no checkpoint");
        assert!(!cont.exists(), "container must not exist before the merge");

        // Each resume re-enters with the stored budget; loop until the
        // checkpoint is retired (bounded — a handful of budget slices plus
        // monitor-tick slack). The retirement of the sidecar, not the
        // status text, is the completion signal: a slice can hit the time
        // limit at the exact moment the frontier drains empty, in which
        // case the run is complete but still reports the limit.
        let mut slices = 0;
        while ckpt.exists() {
            slices += 1;
            assert!(slices <= 200, "resume never completed the enumeration");
            let out = run_strs(&[
                "stand",
                "resume",
                ckpt.to_str().unwrap(),
                "--threads",
                "2",
                "--checkpoint-every",
                "10",
            ])
            .unwrap();
            assert!(out.contains("resuming"), "{out}");
        }
        assert!(slices >= 1, "first resume slice never ran");
        assert!(!ckpt.exists(), "checkpoint must be retired on completion");
        assert!(cont.exists());

        // The stitched-together container equals a clean run's.
        let clean = dir.join("cktime-clean.stand");
        run_strs(&[
            "stand",
            "--trees",
            path,
            "--threads",
            "2",
            "--output",
            clean.to_str().unwrap(),
        ])
        .unwrap();
        let sort_lines = |s: String| {
            let mut v: Vec<String> = s.lines().map(str::to_string).collect();
            v.sort();
            v
        };
        let want = sort_lines(run_strs(&["stand", "cat", clean.to_str().unwrap()]).unwrap());
        let got = sort_lines(run_strs(&["stand", "cat", cpath]).unwrap());
        assert_eq!(got.len(), want.len(), "tree counts diverged");
        assert_eq!(got, want, "resumed container diverged from clean run");
    }

    #[test]
    fn stand_resume_rejects_missing_and_non_checkpoint_input() {
        assert!(run_strs(&["stand", "resume"]).is_err());
        assert!(run_strs(&["stand", "resume", "/no/such/file.standckpt"]).is_err());
        // A .stand container is not a checkpoint: magic mismatch, typed.
        let p = write_tmp("notack.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let dir = std::env::temp_dir().join("gentrius-cli-tests");
        let cont = dir.join("notack.stand");
        run_strs(&[
            "stand",
            "--trees",
            p.to_str().unwrap(),
            "--output",
            cont.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_strs(&["stand", "resume", cont.to_str().unwrap()]).unwrap_err();
        assert!(!err.0.is_empty());
    }

    #[test]
    fn print_trees_outputs_sorted_unique_stand() {
        let p = write_tmp("pt.nwk", "((A,B),(C,D));\n((C,D),(E,F));\n");
        let out = run_strs(&["stand", "--trees", p.to_str().unwrap(), "--print-trees"]).unwrap();
        let trees: Vec<&str> = out.lines().filter(|l| l.ends_with(';')).collect();
        assert!(!trees.is_empty());
        let mut sorted = trees.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(trees.len(), sorted.len());
    }
}
