use std::io::{ErrorKind, Write};
use std::process::ExitCode;

/// Writes the command output to stdout, treating a broken pipe as a clean
/// exit: `gentrius stand cat FILE.stand | head -1` closes our pipe after
/// one line, and dying with an EPIPE panic (the old `print!` path) turns
/// that everyday idiom into a spurious failure. Other I/O errors are real
/// and keep failing loudly.
fn emit(out: &str) -> ExitCode {
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    match w.write_all(out.as_bytes()).and_then(|()| w.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: stdout: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gentrius_cli::run(&args) {
        Ok(out) => emit(&out),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
