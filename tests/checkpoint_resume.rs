//! Kill/resume differential harness for the checkpointed epoch engine.
//!
//! A checkpointed run is a sequence of engine epochs: the monitor pauses
//! the pool every `checkpoint_every`, the frontier is drained into task
//! descriptors, and the next epoch re-injects them. The contract under
//! test: any such interruption pattern — across all three mapping modes
//! and 1/2/4 threads — yields the *exact* clean-run counters and the
//! byte-identical canonical stand set. Every inter-epoch frontier is
//! additionally round-tripped through the `.standckpt` wire format
//! (encode → decode → `StateSnapshot::from_parts`), so the harness also
//! proves the serialized descriptors are faithful, not just the
//! in-memory ones.

use gentrius_core::state::StateSnapshot;
use gentrius_core::{
    canonical_stand_set, CollectNewick, GentriusConfig, InitialTreeRule, MappingMode, RunStats,
    StandProblem, StopCause, StoppingRules, TaxonOrderRule,
};
use gentrius_parallel::{
    run_parallel_epoch, run_parallel_with_sinks, MonitorConfig, ParallelConfig, ResumeFrontier,
    Task,
};
use gentrius_standfile::ckpt::problem_hash;
use gentrius_standfile::{Checkpoint, CkptTask};
use phylo::newick::{parse_forest, to_newick};
use phylo::taxa::{TaxonId, TaxonSet};
use phylo::tree::{EdgeId, Tree};
use std::time::Duration;

const COLLECT_CAP: usize = 200_000;

/// A blow-up-ish instance: large enough that a 1 ms checkpoint cadence
/// interrupts mid-enumeration many times, small enough to finish fast.
const NEWICKS: [&str; 3] = ["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"];

fn setup(mapping: MappingMode) -> (TaxonSet, StandProblem, GentriusConfig) {
    let (taxa, trees) = parse_forest(NEWICKS.iter().copied()).unwrap();
    let problem = StandProblem::from_constraints(trees).unwrap();
    let config = GentriusConfig {
        initial_tree: InitialTreeRule::Index(0),
        taxon_order: TaxonOrderRule::Dynamic,
        stopping: StoppingRules::unlimited(),
        mapping,
    };
    (taxa, problem, config)
}

fn pcfg(threads: usize, checkpoint_every: Option<Duration>) -> ParallelConfig {
    let mut p = ParallelConfig::with_threads(threads);
    // Tight polling so a pause lands mid-task instead of on a boundary.
    p.stop_poll_stride = 1;
    p.monitor = Some(MonitorConfig {
        tick: Duration::from_millis(1),
        heartbeat_capacity: 64,
        checkpoint_every,
    });
    p
}

/// The uninterrupted reference run.
fn clean_run(
    taxa: &TaxonSet,
    problem: &StandProblem,
    config: &GentriusConfig,
    threads: usize,
) -> (RunStats, Vec<String>) {
    let (r, sinks) = run_parallel_with_sinks(problem, config, &pcfg(threads, None), |_| {
        CollectNewick::with_cap(taxa, COLLECT_CAP)
    })
    .unwrap();
    assert_eq!(r.stop, None, "reference run must complete");
    (
        r.stats,
        canonical_stand_set(sinks.into_iter().map(|s| s.out)),
    )
}

/// Round-trips an inter-epoch frontier through the `.standckpt` wire
/// format and rebuilds the tasks from the decoded bytes — the same path
/// `stand resume` takes across a process boundary.
fn wire_roundtrip(
    taxa: &TaxonSet,
    problem: &StandProblem,
    config: &GentriusConfig,
    stats: RunStats,
    generation: u64,
    tasks: &[Task],
) -> (RunStats, Vec<Task>) {
    let taxa_names: Vec<String> = taxa.iter().map(|(_, n)| n.to_string()).collect();
    let constraints: Vec<String> = problem
        .constraints()
        .iter()
        .map(|t| to_newick(t, taxa))
        .collect();
    let ck = Checkpoint {
        problem_hash: problem_hash(&taxa_names, &constraints),
        mapping: config.mapping,
        order_code: tasks.first().map(|t| t.snapshot.order_code()).unwrap_or(0),
        threads: 4,
        initial_tree: 0,
        stopping: config.stopping.clone(),
        stats,
        generation,
        output: "differential.stand".into(),
        taxa: taxa_names,
        constraints,
        segments: Vec::new(),
        tasks: tasks
            .iter()
            .map(|t| CkptTask {
                taxon: t.taxon.0,
                branches: t.branches.iter().map(|e| e.0).collect(),
                depth: t.depth as u64,
                remaining: t.snapshot.remaining().iter().map(|x| x.0).collect(),
                tree: t.snapshot.agile().dump_arena(),
            })
            .collect(),
    };
    let decoded = Checkpoint::decode(&ck.encode()).expect("wire round-trip");
    assert_eq!(decoded, ck, "decode(encode(ck)) must be identity");
    let restored: Vec<Task> = decoded
        .tasks
        .iter()
        .map(|t| {
            let tree = Tree::from_arena_dump(&t.tree).expect("arena dump");
            let remaining: Vec<TaxonId> = t.remaining.iter().map(|&x| TaxonId(x)).collect();
            let snap = StateSnapshot::from_parts(
                problem,
                tree,
                remaining,
                decoded.order_code,
                decoded.mapping,
            )
            .expect("snapshot from parts");
            Task::new(
                snap,
                TaxonId(t.taxon),
                t.branches.iter().map(|&x| EdgeId(x)).collect(),
                t.depth as usize,
            )
        })
        .collect();
    (decoded.stats, restored)
}

/// Runs the enumeration as a sequence of paused epochs, pushing every
/// inter-epoch frontier through the checkpoint wire format.
fn interrupted_run(
    taxa: &TaxonSet,
    problem: &StandProblem,
    config: &GentriusConfig,
    threads: usize,
) -> (RunStats, Vec<String>, u64) {
    let mut outs: Vec<Vec<String>> = Vec::new();
    let mut frontier: Option<Vec<Task>> = None;
    let mut base = RunStats::new();
    let mut epochs = 0u64;
    loop {
        let resume = frontier.take().map(|tasks| ResumeFrontier { tasks, base });
        let (r, sinks, captured) = run_parallel_epoch(
            problem,
            config,
            &pcfg(threads, Some(Duration::from_millis(1))),
            |_| CollectNewick::with_cap(taxa, COLLECT_CAP),
            resume,
            true,
        )
        .unwrap();
        outs.extend(sinks.into_iter().map(|s| s.out));
        epochs += 1;
        assert!(
            epochs <= 100_000,
            "checkpoint epochs did not converge (livelock?)"
        );
        assert_eq!(
            r.stop, None,
            "exhaustive rules: only pauses may end an epoch"
        );
        if captured.is_empty() {
            return (r.stats, canonical_stand_set(outs), epochs);
        }
        let (stats, restored) = wire_roundtrip(taxa, problem, config, r.stats, epochs, &captured);
        base = stats;
        frontier = Some(restored);
    }
}

#[test]
fn kill_resume_differential_all_modes_and_threads() {
    for mapping in [
        MappingMode::Recompute,
        MappingMode::Incremental,
        MappingMode::EdgeIndexed,
    ] {
        let (taxa, problem, config) = setup(mapping);
        let (ref_stats, ref_set) = clean_run(&taxa, &problem, &config, 2);
        assert!(
            ref_set.len() > 1_000,
            "{mapping}: instance too small to interrupt meaningfully ({} trees)",
            ref_set.len()
        );
        for threads in [1usize, 2, 4] {
            let ctx = format!("{mapping} x {threads} threads");
            let (stats, set, epochs) = interrupted_run(&taxa, &problem, &config, threads);
            assert_eq!(stats, ref_stats, "{ctx}: counters diverged");
            assert_eq!(set, ref_set, "{ctx}: stand sets diverged");
            assert!(epochs >= 1, "{ctx}: no epochs ran");
        }
    }
}

/// A resumed run whose frontier is empty must terminate immediately with
/// the carried-over counters and no new trees.
#[test]
fn empty_frontier_resume_terminates() {
    let (taxa, problem, config) = setup(MappingMode::EdgeIndexed);
    let base = RunStats {
        stand_trees: 7,
        intermediate_states: 11,
        dead_ends: 3,
    };
    let (r, sinks, captured) = run_parallel_epoch(
        &problem,
        &config,
        &pcfg(2, None),
        |_| CollectNewick::with_cap(&taxa, COLLECT_CAP),
        Some(ResumeFrontier {
            tasks: Vec::new(),
            base,
        }),
        true,
    )
    .unwrap();
    assert_eq!(r.stats, base, "counters must pass through unchanged");
    assert!(captured.is_empty());
    assert!(sinks.into_iter().all(|s| s.out.is_empty()));
}

/// Count limits fire on resumed runs against the *cumulative* totals: a
/// resume seeded near the limit must stop almost immediately.
#[test]
fn resumed_run_honors_cumulative_count_limit() {
    let (taxa, problem, mut config) = setup(MappingMode::EdgeIndexed);
    // First epoch: pause quickly to harvest a mid-run frontier.
    let (r, _sinks, captured) = run_parallel_epoch(
        &problem,
        &config,
        &pcfg(2, Some(Duration::from_millis(1))),
        |_| CollectNewick::with_cap(&taxa, COLLECT_CAP),
        None,
        true,
    )
    .unwrap();
    assert!(
        !captured.is_empty(),
        "1 ms cadence must interrupt this instance"
    );
    // Second epoch: a tree limit just above the carried-in total.
    let limit = r.stats.stand_trees + 50;
    config.stopping.max_stand_trees = Some(limit);
    let (r2, _sinks, _captured) = run_parallel_epoch(
        &problem,
        &config,
        &pcfg(2, None),
        |_| CollectNewick::with_cap(&taxa, COLLECT_CAP),
        Some(ResumeFrontier {
            tasks: captured,
            base: r.stats,
        }),
        true,
    )
    .unwrap();
    assert_eq!(r2.stop, Some(StopCause::StandTreeLimit));
    assert!(
        r2.stats.stand_trees >= limit,
        "limit {limit} reported before being reached ({})",
        r2.stats.stand_trees
    );
    // Overshoot bounded by one flush batch per worker, as in the paper.
    assert!(
        r2.stats.stand_trees < limit + 10_000,
        "unbounded overshoot past the cumulative limit ({} vs {limit})",
        r2.stats.stand_trees
    );
}
