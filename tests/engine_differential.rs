//! Differential stress harness for the two-level work-stealing scheduler.
//!
//! §IV's preamble claims the serial and parallel versions "yield the exact
//! same results for all datasets". The scheduler rewrite (per-worker steal
//! deques + global injector) must preserve that: this harness runs ~50
//! seeded random instances through the serial driver and the parallel
//! engine at 1/2/4/8 threads and demands identical counters and identical
//! canonical stand sets (sorted canonical Newick, the order-free form).
//! The sweep is constructed to include dead-end-heavy instances, and two
//! dedicated tests drive one instance into each deterministic stopping
//! rule to check that both engines report the same cause with bounded
//! overshoot.

use gentrius_core::{
    canonical_stand_set, run_serial, CollectNewick, CountOnly, GentriusConfig, MappingMode,
    StopCause, StoppingRules,
};
use gentrius_datagen::{
    empirical_dataset, simulated_dataset, Dataset, EmpiricalParams, MissingPattern, SimulatedParams,
};
use gentrius_parallel::{
    run_parallel, run_parallel_with_sinks, FlushThresholds, MonitorConfig, ParallelConfig,
    ParallelRunResult,
};
use phylo::generate::ShapeModel;

const COLLECT_CAP: usize = 80_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The accounting invariant behind `LocalCounters::dead_end`: the
/// `explore.rs` call sites record every dead end *alongside* an
/// intermediate state, so no snapshot — final, prefix, per-worker, or a
/// heartbeat taken mid-run by the monitor — may ever show more dead ends
/// than intermediate states. A violation means double or missed
/// accounting at a call site (or a counter-publication reorder).
fn assert_dead_end_invariant(stats: &gentrius_core::RunStats, ctx: &str) {
    assert!(
        stats.dead_ends <= stats.intermediate_states,
        "{ctx}: dead_ends {} > intermediate_states {}",
        stats.dead_ends,
        stats.intermediate_states
    );
}

/// Applies the dead-end invariant to every snapshot a parallel run
/// exposes.
fn assert_run_invariants(par: &ParallelRunResult, ctx: &str) {
    assert_dead_end_invariant(&par.stats, &format!("{ctx}: totals"));
    assert_dead_end_invariant(&par.prefix, &format!("{ctx}: prefix"));
    for (w, report) in par.workers.iter().enumerate() {
        assert_dead_end_invariant(&report.stats, &format!("{ctx}: worker {w}"));
    }
    for (i, hb) in par.monitor.heartbeats.iter().enumerate() {
        assert_dead_end_invariant(&hb.stats, &format!("{ctx}: heartbeat {i}"));
    }
}

/// ~50 instances spanning all four missingness regimes plus the empirical
/// generator — small enough to enumerate fully, varied enough to exercise
/// splits, steals, dead ends and uneven initial divisions.
fn differential_sweep() -> Vec<Dataset> {
    let mut v = Vec::new();
    for (k, pattern) in [
        MissingPattern::Uniform,
        MissingPattern::Clustered,
        MissingPattern::ComprehensiveCore,
        MissingPattern::RogueTaxa,
    ]
    .into_iter()
    .enumerate()
    {
        let sp = SimulatedParams {
            taxa: (8, 14),
            loci: (3, 5),
            missing: (0.25, 0.5),
            pattern,
            shape: ShapeModel::Uniform,
        };
        v.extend((0..8).map(|i| simulated_dataset(&sp, 7040 + k as u64, i)));
    }
    let ep = EmpiricalParams {
        taxa: (8, 14),
        loci: (3, 5),
        frac_with_missing: 0.8,
        frac_heavy_missing: 0.4,
    };
    v.extend((0..10).map(|i| empirical_dataset(&ep, 7040, i)));
    // A hard batch: bigger, sparser, clustered instances. These supply the
    // dead-end enumerations and the multi-thousand-state searches that the
    // stopping-rule tests below shrink their limits against.
    let hard = SimulatedParams {
        taxa: (14, 18),
        loci: (5, 7),
        missing: (0.5, 0.7),
        pattern: MissingPattern::Clustered,
        shape: ShapeModel::Uniform,
    };
    v.extend((0..8).map(|i| simulated_dataset(&hard, 7044, i)));
    v
}

fn bounded_config() -> GentriusConfig {
    GentriusConfig {
        stopping: StoppingRules::counts(60_000, 300_000),
        ..GentriusConfig::default()
    }
}

#[test]
fn serial_and_parallel_agree_across_the_sweep() {
    let config = bounded_config();
    let sweep = differential_sweep();
    assert!(sweep.len() >= 50, "sweep shrank to {}", sweep.len());
    let mut verified = 0usize;
    let mut with_dead_ends = 0usize;
    let mut saw_steal = false;
    for d in &sweep {
        let Ok(p) = d.problem() else { continue };
        let mut serial_sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
        let serial = run_serial(&p, &config, &mut serial_sink).expect("serial");
        if !serial.complete() {
            continue; // exact identity needs a complete enumeration
        }
        if serial.stats.dead_ends > 0 {
            with_dead_ends += 1;
        }
        assert_dead_end_invariant(&serial.stats, &format!("{} serial", d.name));
        let serial_set = canonical_stand_set([serial_sink.out]);
        for threads in THREAD_COUNTS {
            let (par, sinks) = run_parallel_with_sinks(
                &p,
                &config,
                &ParallelConfig::with_threads(threads),
                |_| CollectNewick::with_cap(&d.taxa, COLLECT_CAP),
            )
            .expect("parallel");
            assert!(
                par.complete(),
                "{} threads={threads}: spurious stop",
                d.name
            );
            assert_eq!(
                par.stats, serial.stats,
                "{} threads={threads}: counters diverged",
                d.name
            );
            assert_run_invariants(&par, &format!("{} threads={threads}", d.name));
            let par_set = canonical_stand_set(sinks.into_iter().map(|s| s.out));
            assert_eq!(
                par_set, serial_set,
                "{} threads={threads}: stand sets diverged",
                d.name
            );
            saw_steal |= par.scheduler.steals > 0;
        }
        verified += 1;
    }
    assert!(
        verified >= 35,
        "too few fully-enumerable instances ({verified})"
    );
    assert!(
        with_dead_ends >= 1,
        "sweep lost its dead-end instances — the harness no longer stresses backtracking"
    );
    assert!(
        saw_steal,
        "no run ever stole a task — the scheduler was not exercised"
    );
}

/// The mapping-kernel conformance matrix: every fully-enumerable instance
/// of the sweep runs under every mapping engine — Recompute (the oracle),
/// Incremental and EdgeIndexed — serially and at 2/4/8 threads. All twelve
/// cells must reproduce the oracle's counters and canonical stand set
/// exactly, and every snapshot a parallel run exposes (totals, prefix,
/// per-worker, heartbeats) must satisfy the dead-end invariant. This is
/// the gate that lets the flat edge-indexed kernels be the default: any
/// divergence from the recompute projections shows up as a counter or
/// stand-set mismatch here.
#[test]
fn mapping_mode_conformance_matrix() {
    const MODES: [MappingMode; 3] = [
        MappingMode::Recompute,
        MappingMode::Incremental,
        MappingMode::EdgeIndexed,
    ];
    let sweep = differential_sweep();
    let mut verified = 0usize;
    let mut with_dead_ends = 0usize;
    for d in &sweep {
        let Ok(p) = d.problem() else { continue };
        // Serial Recompute is the oracle cell every other cell must match.
        let oracle_cfg = GentriusConfig {
            mapping: MappingMode::Recompute,
            ..bounded_config()
        };
        let mut oracle_sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
        let oracle = run_serial(&p, &oracle_cfg, &mut oracle_sink).expect("oracle");
        if !oracle.complete() {
            continue; // exact identity needs a complete enumeration
        }
        assert_dead_end_invariant(&oracle.stats, &format!("{} oracle", d.name));
        if oracle.stats.dead_ends > 0 {
            with_dead_ends += 1;
        }
        let oracle_set = canonical_stand_set([oracle_sink.out]);
        for mode in MODES {
            let config = GentriusConfig {
                mapping: mode,
                ..bounded_config()
            };
            if mode != MappingMode::Recompute {
                // The Recompute serial cell *is* the oracle; don't rerun it.
                let mut sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
                let serial = run_serial(&p, &config, &mut sink).expect("serial");
                assert_eq!(
                    serial.stats, oracle.stats,
                    "{} {mode} serial: counters diverged",
                    d.name
                );
                assert_eq!(
                    canonical_stand_set([sink.out]),
                    oracle_set,
                    "{} {mode} serial: stand set diverged",
                    d.name
                );
            }
            for threads in [2usize, 4, 8] {
                let (par, sinks) = run_parallel_with_sinks(
                    &p,
                    &config,
                    &ParallelConfig::with_threads(threads),
                    |_| CollectNewick::with_cap(&d.taxa, COLLECT_CAP),
                )
                .expect("parallel");
                assert!(
                    par.complete(),
                    "{} {mode} threads={threads}: spurious stop",
                    d.name
                );
                assert_eq!(
                    par.stats, oracle.stats,
                    "{} {mode} threads={threads}: counters diverged",
                    d.name
                );
                assert_run_invariants(&par, &format!("{} {mode} threads={threads}", d.name));
                assert_eq!(
                    canonical_stand_set(sinks.into_iter().map(|s| s.out)),
                    oracle_set,
                    "{} {mode} threads={threads}: stand set diverged",
                    d.name
                );
            }
        }
        verified += 1;
    }
    assert!(
        verified >= 35,
        "too few fully-enumerable instances ({verified})"
    );
    assert!(
        with_dead_ends >= 1,
        "matrix lost its dead-end instances — kernels' undo paths not stressed"
    );
}

/// Deque-churn stress profile: worker deques start on deliberately tiny
/// ring buffers (8 slots) while the capacity gate is raised far above
/// them, so sustained splitting forces repeated Chase–Lev `grow` cycles —
/// buffer swap, retire, reclaim — underneath concurrent steals. The
/// results must stay bit-identical to the serial driver, and the profile
/// must actually exercise `grow` (asserted via the engine report) or it
/// is testing nothing.
#[test]
fn deque_churn_profile_stays_exact_and_exercises_grow() {
    let config = bounded_config();
    let hard = SimulatedParams {
        taxa: (14, 18),
        loci: (5, 7),
        missing: (0.5, 0.7),
        pattern: MissingPattern::Clustered,
        shape: ShapeModel::Uniform,
    };
    let mut total_grows = 0u64;
    let mut total_steals = 0u64;
    let mut verified = 0usize;
    for i in 0..6 {
        let d = simulated_dataset(&hard, 9090, i);
        let Ok(p) = d.problem() else { continue };
        let mut serial_sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
        let serial = run_serial(&p, &config, &mut serial_sink).expect("serial");
        if !serial.complete() {
            continue;
        }
        let serial_set = canonical_stand_set([serial_sink.out]);
        for threads in [2usize, 4, 8] {
            let mut pcfg = ParallelConfig::with_threads(threads);
            pcfg.queue_capacity = Some(256); // far above the 8-slot buffers
            pcfg.steal_seed = i;
            // A fast monitor tick makes the heartbeats sample the global
            // counters *while* workers are flushing, stressing the
            // snapshot-safe publication order behind the dead-end
            // invariant.
            pcfg.monitor = Some(MonitorConfig {
                tick: std::time::Duration::from_millis(1),
                heartbeat_capacity: 4096,
                checkpoint_every: None,
            });
            let (par, sinks) = run_parallel_with_sinks(&p, &config, &pcfg, |_| {
                CollectNewick::with_cap(&d.taxa, COLLECT_CAP)
            })
            .expect("parallel");
            assert!(
                par.complete(),
                "{} threads={threads}: spurious stop",
                d.name
            );
            assert_eq!(
                par.stats, serial.stats,
                "{} threads={threads}: counters diverged under churn",
                d.name
            );
            assert_run_invariants(&par, &format!("{} churn threads={threads}", d.name));
            let par_set = canonical_stand_set(sinks.into_iter().map(|s| s.out));
            assert_eq!(
                par_set, serial_set,
                "{} threads={threads}: stand sets diverged under churn",
                d.name
            );
            total_grows += par.scheduler.deque_grows;
            total_steals += par.scheduler.steals;
        }
        verified += 1;
    }
    assert!(verified >= 3, "only {verified} churn instances enumerable");
    assert!(
        total_grows > 0,
        "capacity 256 over 8-slot initial buffers never forced a grow — churn profile is inert"
    );
    assert!(total_steals > 0, "churn profile never stole");
}

/// Steal-heavy stress profile for the snapshot-handoff task model: tiny
/// flush thresholds force counter traffic on every few events, small deque
/// ring buffers plus a raised capacity gate maximise split/steal churn,
/// and per-step stop polling keeps every worker responsive. A stolen task
/// now carries a full `StateSnapshot` (not a replay path), so this profile
/// hammers exactly the snapshot/clone/resume path under all three mapping
/// engines at 1/2/4/8 threads and demands bit-identical stand sets plus
/// the dead-end invariant on every counter snapshot.
#[test]
fn steal_heavy_snapshot_handoff_stays_exact_across_modes() {
    const MODES: [MappingMode; 3] = [
        MappingMode::Recompute,
        MappingMode::Incremental,
        MappingMode::EdgeIndexed,
    ];
    let hard = SimulatedParams {
        taxa: (14, 18),
        loci: (5, 7),
        missing: (0.5, 0.7),
        pattern: MissingPattern::Clustered,
        shape: ShapeModel::Uniform,
    };
    let mut verified = 0usize;
    let mut total_steals = 0u64;
    for i in 0..4 {
        let d = simulated_dataset(&hard, 6161, i);
        let Ok(p) = d.problem() else { continue };
        let mut serial_sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
        let serial = run_serial(&p, &bounded_config(), &mut serial_sink).expect("serial");
        if !serial.complete() {
            continue;
        }
        let serial_set = canonical_stand_set([serial_sink.out]);
        for mode in MODES {
            let config = GentriusConfig {
                mapping: mode,
                ..bounded_config()
            };
            for threads in THREAD_COUNTS {
                let mut pcfg = ParallelConfig::with_threads(threads);
                // Tiny batches: flush-driven global-counter traffic on
                // nearly every event.
                pcfg.flush = FlushThresholds {
                    stand_trees: 2,
                    intermediate_states: 2,
                    dead_ends: 2,
                };
                // Small initial ring buffers under a raised capacity gate:
                // sustained splitting, stealing and deque growth.
                pcfg.queue_capacity = Some(128);
                pcfg.steal_seed = i ^ (threads as u64) << 8;
                pcfg.stop_poll_stride = 1;
                let (par, sinks) = run_parallel_with_sinks(&p, &config, &pcfg, |_| {
                    CollectNewick::with_cap(&d.taxa, COLLECT_CAP)
                })
                .expect("parallel");
                assert!(
                    par.complete(),
                    "{} {mode} threads={threads}: spurious stop",
                    d.name
                );
                assert_eq!(
                    par.stats, serial.stats,
                    "{} {mode} threads={threads}: counters diverged under steal stress",
                    d.name
                );
                assert_run_invariants(&par, &format!("{} {mode} steal threads={threads}", d.name));
                let par_set = canonical_stand_set(sinks.into_iter().map(|s| s.out));
                assert_eq!(
                    par_set, serial_set,
                    "{} {mode} threads={threads}: stand sets diverged under steal stress",
                    d.name
                );
                total_steals += par.scheduler.steals;
            }
        }
        verified += 1;
    }
    assert!(
        verified >= 2,
        "only {verified} steal-stress instances enumerable"
    );
    assert!(
        total_steals > 0,
        "steal-stress profile never stole a snapshot task — profile is inert"
    );
}

/// One instance per adversarial-zoo family (the deep-unbalanced plateau,
/// a fuzz-sized stopping-rule-interaction instance, and the Grove-like
/// clade-blocky empirical instance), each run through the full 3-mode ×
/// {serial, 2, 4 threads} conformance matrix: identical counters,
/// identical canonical stand sets, and the dead-end invariant on every
/// exposed snapshot. The showcase-scale interaction instance cannot
/// appear here (its complete enumeration is a blow-up by design); its
/// fuzz-sized sibling exercises the same bimodal desert/garden geometry.
#[test]
fn adversarial_zoo_families_stay_exact_across_modes_and_threads() {
    use gentrius_datagen::adversarial::{
        grove_showcase, interaction_dataset, unbalanced_showcase, InteractionParams, ZOO_SEED,
    };
    const MODES: [MappingMode; 3] = [
        MappingMode::Recompute,
        MappingMode::Incremental,
        MappingMode::EdgeIndexed,
    ];
    let small_interaction = interaction_dataset(
        &InteractionParams {
            taxa: (10, 14),
            loci: (4, 6),
            ..InteractionParams::zoo()
        },
        ZOO_SEED,
        0,
    );
    for d in [unbalanced_showcase(), small_interaction, grove_showcase()] {
        let p = d.problem().expect("zoo instance is valid");
        let oracle_cfg = GentriusConfig {
            mapping: MappingMode::Recompute,
            ..bounded_config()
        };
        let mut oracle_sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
        let oracle = run_serial(&p, &oracle_cfg, &mut oracle_sink).expect("oracle");
        assert!(
            oracle.complete(),
            "{}: zoo conformance instance must fully enumerate",
            d.name
        );
        assert_dead_end_invariant(&oracle.stats, &format!("{} oracle", d.name));
        let oracle_set = canonical_stand_set([oracle_sink.out]);
        for mode in MODES {
            let config = GentriusConfig {
                mapping: mode,
                ..bounded_config()
            };
            if mode != MappingMode::Recompute {
                let mut sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
                let serial = run_serial(&p, &config, &mut sink).expect("serial");
                assert_eq!(
                    serial.stats, oracle.stats,
                    "{} {mode} serial: counters diverged",
                    d.name
                );
                assert_eq!(
                    canonical_stand_set([sink.out]),
                    oracle_set,
                    "{} {mode} serial: stand set diverged",
                    d.name
                );
            }
            for threads in [2usize, 4] {
                let (par, sinks) = run_parallel_with_sinks(
                    &p,
                    &config,
                    &ParallelConfig::with_threads(threads),
                    |_| CollectNewick::with_cap(&d.taxa, COLLECT_CAP),
                )
                .expect("parallel");
                assert!(
                    par.complete(),
                    "{} {mode} threads={threads}: spurious stop",
                    d.name
                );
                assert_eq!(
                    par.stats, oracle.stats,
                    "{} {mode} threads={threads}: counters diverged",
                    d.name
                );
                assert_run_invariants(&par, &format!("{} {mode} threads={threads}", d.name));
                assert_eq!(
                    canonical_stand_set(sinks.into_iter().map(|s| s.out)),
                    oracle_set,
                    "{} {mode} threads={threads}: stand set diverged",
                    d.name
                );
            }
        }
    }
}

/// The first instance in the sweep whose complete enumeration crosses both
/// thresholds, so shrunken limits are guaranteed to fire.
fn limit_tripping_instance(min_trees: u64, min_states: u64) -> (Dataset, u64, u64) {
    let config = bounded_config();
    for d in differential_sweep() {
        let Ok(p) = d.problem() else { continue };
        let Ok(r) = run_serial(&p, &config, &mut CountOnly) else {
            continue;
        };
        if r.complete()
            && r.stats.stand_trees >= min_trees
            && r.stats.intermediate_states >= min_states
        {
            return (d, r.stats.stand_trees, r.stats.intermediate_states);
        }
    }
    panic!("no sweep instance crosses trees>={min_trees}, states>={min_states}");
}

#[test]
fn stand_tree_limit_fires_in_both_engines_with_bounded_overshoot() {
    let (d, total_trees, _) = limit_tripping_instance(200, 200);
    let p = d.problem().expect("valid");
    let limit = total_trees / 2;
    let config = GentriusConfig {
        stopping: StoppingRules::counts(limit, u64::MAX),
        ..GentriusConfig::default()
    };
    let serial = run_serial(&p, &config, &mut CountOnly).expect("serial");
    assert_eq!(serial.stop, Some(StopCause::StandTreeLimit), "{}", d.name);
    for threads in THREAD_COUNTS {
        let mut pcfg = ParallelConfig::with_threads(threads);
        let batch = 16u64;
        pcfg.flush = FlushThresholds {
            stand_trees: batch,
            intermediate_states: batch,
            dead_ends: batch,
        };
        // The overshoot bound below assumes every worker re-checks the stop
        // flag after each step; stride 1 restores that per-step poll.
        pcfg.stop_poll_stride = 1;
        let par = run_parallel(&p, &config, &pcfg).expect("parallel");
        assert_eq!(
            par.stop,
            Some(StopCause::StandTreeLimit),
            "{} threads={threads}",
            d.name
        );
        // One in-flight batch per worker, plus one step per worker between
        // the stop being raised and each worker's next poll.
        let bound = limit + batch * threads as u64 + threads as u64;
        assert!(
            par.stats.stand_trees <= bound,
            "{} threads={threads}: {} trees overshoots limit {limit} (bound {bound})",
            d.name,
            par.stats.stand_trees
        );
    }
}

#[test]
fn state_limit_fires_in_both_engines_with_bounded_overshoot() {
    let (d, _, total_states) = limit_tripping_instance(200, 200);
    let p = d.problem().expect("valid");
    let limit = total_states / 2;
    let config = GentriusConfig {
        stopping: StoppingRules::counts(u64::MAX, limit),
        ..GentriusConfig::default()
    };
    let serial = run_serial(&p, &config, &mut CountOnly).expect("serial");
    assert_eq!(serial.stop, Some(StopCause::StateLimit), "{}", d.name);
    for threads in THREAD_COUNTS {
        let mut pcfg = ParallelConfig::with_threads(threads);
        let batch = 16u64;
        pcfg.flush = FlushThresholds {
            stand_trees: batch,
            intermediate_states: batch,
            dead_ends: batch,
        };
        // Per-step stop polling keeps the overshoot bound tight (see the
        // stand-tree variant above).
        pcfg.stop_poll_stride = 1;
        let par = run_parallel(&p, &config, &pcfg).expect("parallel");
        assert_eq!(
            par.stop,
            Some(StopCause::StateLimit),
            "{} threads={threads}",
            d.name
        );
        let bound = limit + batch * threads as u64 + threads as u64;
        assert!(
            par.stats.intermediate_states <= bound,
            "{} threads={threads}: {} states overshoots limit {limit} (bound {bound})",
            d.name,
            par.stats.intermediate_states
        );
    }
}

#[test]
fn time_limit_fires_in_both_engines() {
    // The serial driver only examines the clock every 8192 events, so the
    // instance must be big enough to reach that first checkpoint.
    let (d, _, _) = limit_tripping_instance(1, 6_000);
    let p = d.problem().expect("valid");
    let config = GentriusConfig {
        stopping: StoppingRules {
            max_stand_trees: None,
            max_intermediate_states: None,
            max_time: Some(std::time::Duration::ZERO),
        },
        ..GentriusConfig::default()
    };
    let serial = run_serial(&p, &config, &mut CountOnly).expect("serial");
    assert_eq!(serial.stop, Some(StopCause::TimeLimit), "{}", d.name);
    for threads in [2usize, 8] {
        let mut pcfg = ParallelConfig::with_threads(threads);
        pcfg.flush = FlushThresholds::unbatched();
        let par = run_parallel(&p, &config, &pcfg).expect("parallel");
        assert_eq!(
            par.stop,
            Some(StopCause::TimeLimit),
            "{} threads={threads}",
            d.name
        );
    }
    // With the run monitor supervising the clock, even *unreachable* flush
    // thresholds cannot defer the limit (the flush-side check alone could
    // miss it forever on parked/starved workers).
    for threads in [1usize, 4] {
        let mut pcfg = ParallelConfig::with_threads(threads);
        pcfg.flush = FlushThresholds {
            stand_trees: u64::MAX,
            intermediate_states: u64::MAX,
            dead_ends: u64::MAX,
        };
        let par = run_parallel(&p, &config, &pcfg).expect("parallel");
        assert_eq!(
            par.stop,
            Some(StopCause::TimeLimit),
            "{} threads={threads} (huge thresholds)",
            d.name
        );
        assert!(par.monitor.time_limit_raised);
        assert_run_invariants(&par, &format!("{} time-limit threads={threads}", d.name));
    }
}
