//! Property-based tests (proptest) on the core invariants, spanning the
//! phylo substrate and the Gentrius engines.

use gentrius_core::{CollectNewick, GentriusConfig, StandProblem, StoppingRules};
use phylo::bitset::BitSet;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::newick::{parse_newick, to_newick};
use phylo::ops::{compatible, displays, restrict};
use phylo::split::topo_eq;
use phylo::taxa::TaxonSet;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded random binary tree on `n` taxa.
fn tree_strategy() -> impl Strategy<Value = (u64, usize)> {
    (0u64..1_000_000, 4usize..24)
}

fn mk_tree(seed: u64, n: usize) -> phylo::Tree {
    random_tree_on_n(n, ShapeModel::Uniform, &mut ChaCha8Rng::seed_from_u64(seed))
}

fn subset_strategy(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(proptest::bool::ANY, n)
}

fn to_bitset(mask: &[bool]) -> BitSet {
    BitSet::from_iter(
        mask.len(),
        mask.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn newick_roundtrip_preserves_topology((seed, n) in tree_strategy()) {
        let tree = mk_tree(seed, n);
        let taxa = TaxonSet::with_synthetic(n);
        let s = to_newick(&tree, &taxa);
        let back = parse_newick(&s, &taxa).expect("own output parses");
        prop_assert!(topo_eq(&tree, &back), "roundtrip changed topology: {s}");
        // Canonical form is a fixed point.
        prop_assert_eq!(to_newick(&back, &taxa), s);
    }

    #[test]
    fn restriction_is_displayed_and_idempotent(
        (seed, n) in tree_strategy(),
        mask in subset_strategy(24),
    ) {
        let tree = mk_tree(seed, n);
        let keep = to_bitset(&mask[..n]);
        let sub = restrict(&tree, &keep);
        prop_assert!(displays(&tree, &sub) || sub.leaf_count() < 3);
        let again = restrict(&sub, &keep);
        prop_assert!(topo_eq(&sub, &again));
    }

    #[test]
    fn restriction_commutes_with_intersection(
        (seed, n) in tree_strategy(),
        m1 in subset_strategy(24),
        m2 in subset_strategy(24),
    ) {
        let tree = mk_tree(seed, n);
        let s1 = to_bitset(&m1[..n]);
        let s2 = to_bitset(&m2[..n]);
        let lhs = restrict(&restrict(&tree, &s1), &s2);
        let rhs = restrict(&tree, &s1.intersection(&s2));
        prop_assert!(topo_eq(&lhs, &rhs));
    }

    #[test]
    fn induced_subtrees_are_pairwise_compatible(
        (seed, n) in tree_strategy(),
        m1 in subset_strategy(24),
        m2 in subset_strategy(24),
    ) {
        let tree = mk_tree(seed, n);
        let a = restrict(&tree, &to_bitset(&m1[..n]));
        let b = restrict(&tree, &to_bitset(&m2[..n]));
        // Both are displayed by one tree, hence compatible by definition.
        prop_assert!(compatible(&a, &b));
    }

    #[test]
    fn insert_remove_restores_fingerprint((seed, n) in tree_strategy(), edge_pick in 0usize..64) {
        // Tree over an (n+1)-taxon universe using only taxa 0..n, so taxon
        // n is free to insert.
        let small = mk_tree(seed, n.min(22));
        let n = small.leaf_count();
        let taxa = TaxonSet::with_synthetic(n + 1);
        let s = to_newick(&small, &TaxonSet::with_synthetic(n));
        let mut tree = parse_newick(&s, &taxa).expect("parse in larger universe");
        let fp = tree.arena_fingerprint();
        let edges: Vec<_> = tree.edges().collect();
        let e = edges[edge_pick % edges.len()];
        let ins = tree.insert_leaf_on_edge(phylo::TaxonId(n as u32), e);
        prop_assert!(tree.is_binary_unrooted());
        tree.remove_insertion(&ins);
        prop_assert_eq!(tree.arena_fingerprint(), fp);
    }

    #[test]
    fn decisive_pam_implies_singleton_stands(seed in 0u64..50_000) {
        // Steel & Sanderson: if every taxon quadruple is covered by some
        // locus, the induced subtrees determine any binary tree uniquely —
        // every stand is a singleton. Use the leave-one-out design (locus
        // l = all taxa except taxon l): no locus is comprehensive-free of
        // structure, yet every quadruple avoids at least one dropped taxon,
        // so the PAM is decisive with 1/n missing data.
        use phylo::pam::Pam;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let n = rng.gen_range(6..=10);
        let tree = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
        let mut pam = Pam::new(n, n);
        for l in 0..n {
            for t in 0..n {
                pam.set(phylo::TaxonId(t as u32), l, t != l);
            }
        }
        prop_assert!(pam.is_decisive());
        prop_assert!(pam.missing_fraction() > 0.0);
        // Negative control: keeping only the first four loci leaves the
        // quadruples inside {0,1,2,3} uncovered (each of those loci drops
        // one member of that quadruple), so decisiveness must fail.
        let reduced = Pam::from_columns(
            n,
            (0..4).map(|l| pam.column(l).clone()).collect(),
        );
        prop_assert!(!reduced.is_decisive());
        prop_assume!(pam.validate_for_inference().is_ok());
        let problem = StandProblem::from_species_tree_and_pam(&tree, &pam).expect("valid");
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(10, 100_000),
            ..GentriusConfig::default()
        };
        let r = gentrius_core::run_serial(&problem, &cfg, &mut gentrius_core::CountOnly)
            .expect("run");
        prop_assert!(r.complete());
        prop_assert_eq!(r.stats.stand_trees, 1, "decisive PAM must pin the tree");
    }

    #[test]
    fn every_enumerated_tree_displays_every_constraint(
        seed in 0u64..100_000,
    ) {
        // Random source tree on 9 taxa, three overlapping windows.
        let n = 9;
        let tree = mk_tree(seed, n);
        let taxa = TaxonSet::with_synthetic(n);
        let windows = [
            BitSet::from_iter(n, 0..5),
            BitSet::from_iter(n, 3..8),
            BitSet::from_iter(n, [0usize, 6, 7, 8].into_iter()),
        ];
        let constraints: Vec<_> = windows.iter().map(|w| restrict(&tree, w)).collect();
        let problem = StandProblem::from_constraints(constraints.clone()).expect("valid");
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(20_000, 200_000),
            ..GentriusConfig::default()
        };
        let mut sink = CollectNewick::with_cap(&taxa, 20_000);
        let r = gentrius_core::run_serial(&problem, &cfg, &mut sink).expect("run");
        for s in &sink.out {
            let t = parse_newick(s, &taxa).expect("parse");
            for c in &constraints {
                prop_assert!(displays(&t, c), "{s} fails a constraint");
            }
        }
        if r.complete() {
            // The source tree must be among them.
            let canon = to_newick(&tree, &taxa);
            prop_assert!(sink.out.contains(&canon), "source tree missing");
        }
    }
}
