//! Cross-validation of two algorithmically independent stand counters:
//! Gentrius (branch-and-bound taxon insertion, this paper) versus SUPERB
//! (rooted bipartition recursion, Constantinescu & Sankoff 1995 — the
//! prior art of §I). Agreement on randomized inputs is the strongest
//! correctness evidence available beyond the small-n brute force.

use gentrius_core::{CountOnly, GentriusConfig, StandProblem, StoppingRules};
use gentrius_datagen::{sample_pam, simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_superb::{comprehensive_taxon, superb_count, SuperbInputError};
use phylo::generate::{random_tree_on_n, ShapeModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn gentrius_count(p: &StandProblem) -> Option<u64> {
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(500_000, 2_000_000),
        ..GentriusConfig::default()
    };
    let r = gentrius_core::run_serial(p, &cfg, &mut CountOnly).expect("run");
    r.complete().then_some(r.stats.stand_trees)
}

#[test]
fn superb_agrees_with_gentrius_on_comprehensive_core_datasets() {
    let params = SimulatedParams {
        taxa: (8, 16),
        loci: (3, 5),
        missing: (0.3, 0.5),
        pattern: MissingPattern::ComprehensiveCore,
        shape: ShapeModel::Uniform,
    };
    let mut checked = 0;
    for i in 0..30 {
        let d = simulated_dataset(&params, 2024, i);
        let Ok(p) = d.problem() else { continue };
        let Some(gentrius) = gentrius_count(&p) else {
            continue; // too large to fully enumerate in a unit test
        };
        match superb_count(&p) {
            Ok(superb) => {
                assert_eq!(superb, gentrius as u128, "{} disagrees", d.name);
                checked += 1;
            }
            Err(SuperbInputError::NoComprehensiveTaxon) => {
                // Core datasets should always have one by construction.
                panic!("{}: comprehensive core lost its core", d.name);
            }
            Err(SuperbInputError::Count(_)) => continue, // block explosion
        }
    }
    assert!(checked >= 10, "only {checked} instances cross-validated");
}

#[test]
fn superb_agrees_on_handmade_mixed_overlap() {
    // PAMs where one taxon is comprehensive but the rest overlap freely.
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut checked = 0;
    for _ in 0..20 {
        let n = 10;
        let tree = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
        let mut pam = sample_pam(n, 3, 0.4, MissingPattern::Uniform, &mut rng);
        for l in 0..pam.loci() {
            pam.set(phylo::TaxonId(0), l, true); // make taxon 0 comprehensive
        }
        let Ok(p) = StandProblem::from_species_tree_and_pam(&tree, &pam) else {
            continue;
        };
        let Some(gentrius) = gentrius_count(&p) else {
            continue;
        };
        let Ok(superb) = superb_count(&p) else {
            continue;
        };
        assert_eq!(superb, gentrius as u128);
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} instances cross-validated");
}

#[test]
fn capability_boundary_no_comprehensive_taxon() {
    // The paper's §I point: SUPERB-based tools *cannot run* without a
    // comprehensive taxon, while Gentrius proceeds fine.
    let params = SimulatedParams {
        taxa: (10, 14),
        loci: (4, 6),
        missing: (0.45, 0.55),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    let mut boundary_hit = 0;
    for i in 0..20 {
        let d = simulated_dataset(&params, 555, i);
        let Ok(p) = d.problem() else { continue };
        if comprehensive_taxon(&p).is_some() {
            continue;
        }
        assert_eq!(
            superb_count(&p).unwrap_err(),
            SuperbInputError::NoComprehensiveTaxon
        );
        // Gentrius handles the same input (count may be truncated for
        // huge stands; what matters is that it runs at all).
        let _ = gentrius_count(&p);
        boundary_hit += 1;
    }
    assert!(
        boundary_hit >= 5,
        "want several boundary cases, got {boundary_hit}"
    );
}
