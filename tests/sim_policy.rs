//! Scheduler-policy tests of the virtual-time simulator: the paper's task
//! restrictions (queue capacity rule, ≥3-remaining-taxa cut-off) must
//! behave as designed, and results must be invariant to them — under
//! every mapping engine. The simulator replays the scheduler policy on
//! top of the real kernels, so each test runs the full Recompute /
//! Incremental / EdgeIndexed matrix: a policy invariant that holds only
//! under one kernel is not an invariant.

use gentrius_core::{GentriusConfig, MappingMode, StandProblem, StoppingRules};
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_sim::{simulate, CostModel, SimConfig};
use phylo::generate::ShapeModel;

const MODES: [MappingMode; 3] = [
    MappingMode::Recompute,
    MappingMode::Incremental,
    MappingMode::EdgeIndexed,
];

fn medium_instance() -> StandProblem {
    let params = SimulatedParams {
        taxa: (20, 20),
        loci: (5, 5),
        missing: (0.45, 0.5),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    // Search a deterministic index with a non-trivial serial cost.
    for i in 0..40 {
        let d = simulated_dataset(&params, 31_337, i);
        let Ok(p) = d.problem() else { continue };
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(100_000, 100_000),
            ..GentriusConfig::default()
        };
        let s = simulate(&p, &cfg, &SimConfig::with_threads(1)).unwrap();
        if s.complete() && s.makespan > 4_000 {
            return p;
        }
    }
    panic!("no medium instance found in the seeded family");
}

fn config(mapping: MappingMode) -> GentriusConfig {
    GentriusConfig {
        mapping,
        stopping: StoppingRules::counts(100_000, 100_000),
        ..GentriusConfig::default()
    }
}

#[test]
fn results_invariant_to_all_policy_knobs() {
    let p = medium_instance();
    let mut reference = None;
    for mode in MODES {
        let cfg = config(mode);
        let serial = simulate(&p, &cfg, &SimConfig::with_threads(1)).unwrap();
        // The counters may not depend on the mapping engine either.
        let reference = reference.get_or_insert(serial.stats);
        assert_eq!(&serial.stats, reference, "{mode}: serial counters drifted");
        for threads in [2usize, 8] {
            for capacity in [Some(1usize), Some(4), None] {
                for min_remaining in [2usize, 3, 6] {
                    for stealing in [true, false] {
                        let mut sc = SimConfig::with_threads(threads);
                        sc.queue_capacity = capacity;
                        sc.min_remaining_for_split = min_remaining;
                        sc.stealing = stealing;
                        let r = simulate(&p, &cfg, &sc).unwrap();
                        assert_eq!(
                            &r.stats, reference,
                            "{mode} threads={threads} cap={capacity:?} \
                             min={min_remaining} steal={stealing}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn zero_capacity_queue_disables_stealing() {
    let p = medium_instance();
    for mode in MODES {
        let cfg = config(mode);
        let mut with_queue = SimConfig::with_threads(8);
        with_queue.cost = CostModel::ideal();
        let mut no_queue = with_queue.clone();
        no_queue.queue_capacity = Some(0);
        let a = simulate(&p, &cfg, &with_queue).unwrap();
        let b = simulate(&p, &cfg, &no_queue).unwrap();
        assert_eq!(
            b.tasks_stolen, 0,
            "{mode}: capacity 0 must prevent submissions"
        );
        assert!(
            a.tasks_stolen > 0,
            "{mode}: default capacity should allow stealing"
        );
        assert!(a.makespan <= b.makespan, "{mode}: stealing must not hurt");
        // A zero-capacity queue is exactly the static-split mode.
        let mut static_mode = with_queue.clone();
        static_mode.stealing = false;
        let c = simulate(&p, &cfg, &static_mode).unwrap();
        assert_eq!(b.makespan, c.makespan, "{mode}");
    }
}

#[test]
fn larger_min_remaining_reduces_task_traffic() {
    let p = medium_instance();
    for mode in MODES {
        let cfg = config(mode);
        let stolen = |min: usize| {
            let mut sc = SimConfig::with_threads(8);
            sc.min_remaining_for_split = min;
            simulate(&p, &cfg, &sc).unwrap().tasks_stolen
        };
        let loose = stolen(2);
        let paper = stolen(3);
        let strict = stolen(8);
        assert!(loose >= paper, "{mode}: loose {loose} < paper {paper}");
        assert!(paper >= strict, "{mode}: paper {paper} < strict {strict}");
    }
}

#[test]
fn makespan_never_below_critical_work_over_threads() {
    // Sanity: T_N >= T_1 / N on the ideal machine (no superlinear gains
    // without stopping rules).
    let p = medium_instance();
    for mode in MODES {
        let cfg = config(mode);
        let mut base = SimConfig::with_threads(1);
        base.cost = CostModel::ideal();
        let serial = simulate(&p, &cfg, &base).unwrap();
        for threads in [2usize, 4, 8, 16, 32] {
            let mut sc = SimConfig::with_threads(threads);
            sc.cost = CostModel::ideal();
            let r = simulate(&p, &cfg, &sc).unwrap();
            let lower = serial.makespan / threads as u64;
            assert!(
                r.makespan >= lower,
                "{mode} threads {threads}: {} < {lower}",
                r.makespan
            );
            assert!(r.makespan <= serial.makespan, "{mode} threads {threads}");
        }
    }
}
