//! Corpus replay — every dataset under `tests/corpus/` runs through the
//! fuzzer's 3-mode × thread-count conformance matrix forever.
//!
//! The corpus holds the pinned adversarial-zoo showcases (seeded by
//! `corpus_seed`) plus any minimized failure `datagen fuzz` ever wrote.
//! A fixed divergence must stay fixed: once a mutant lands here, every
//! future engine change replays it.

use gentrius_core::StoppingRules;
use gentrius_datagen::fuzz::{conformance_check, Conformance};
use gentrius_datagen::Dataset;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The fuzzer's default budget and thread matrix (`FuzzConfig::new`),
/// inlined so a corpus entry replays under the regime that minted it.
fn replay_budget() -> StoppingRules {
    StoppingRules::counts(40_000, 150_000)
}

#[test]
fn corpus_is_present_and_parseable() {
    let entries = read_corpus();
    assert!(
        entries.len() >= 3,
        "expected at least the three seeded zoo showcases, found {}",
        entries.len()
    );
    for (path, d) in &entries {
        assert!(
            d.problem().is_ok(),
            "{}: corpus entry no longer builds a problem",
            path.display()
        );
    }
}

#[test]
fn every_corpus_entry_conforms() {
    let stopping = replay_budget();
    for (path, d) in read_corpus() {
        match conformance_check(&d, &stopping, &[2, 4]) {
            Conformance::Ok => {}
            // A Skip is legal for corpus entries whose full enumeration
            // outgrows the replay budget — but the seeded showcases are
            // sized to complete, and minimized failures were checkable by
            // construction, so flag it loudly.
            Conformance::Skip(why) => {
                panic!("{}: corpus entry became uncheckable: {why}", path.display())
            }
            Conformance::Diverged(why) => {
                panic!("{}: conformance regression: {why}", path.display())
            }
        }
    }
}

fn read_corpus() -> Vec<(PathBuf, Dataset)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "dataset") {
            let text = std::fs::read_to_string(&path).expect("readable corpus file");
            let d = Dataset::from_text(&text)
                .unwrap_or_else(|e| panic!("{}: unparseable corpus entry: {e}", path.display()));
            out.push((path, d));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}
