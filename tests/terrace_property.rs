//! End-to-end verification of the paper's central premise (§I): "Under
//! many common criteria the trees from one stand have identical score."
//!
//! Pipeline: simulate a species tree → simulate a partitioned supermatrix
//! on it → blank cells per a random PAM → induce the per-locus constraint
//! trees → enumerate the stand with Gentrius → score every stand tree with
//! partitioned Fitch parsimony. Under the supermatrix convention
//! (per-partition scores on the restricted tree) all stand trees must
//! score identically — and trees *off* the stand generally do not.

use gentrius_core::{CollectTrees, GentriusConfig, StoppingRules, Terrace};
use gentrius_datagen::{sample_pam, MissingPattern};
use gentrius_msa::{score, simulate_supermatrix, MissingMode, SimulateParams};
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::split::topo_eq;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Setup {
    matrix: gentrius_msa::Supermatrix,
    stand: Vec<phylo::Tree>,
    complete: bool,
}

fn setup(seed: u64, n: usize, loci: usize, missing: f64) -> Option<Setup> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let species = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
    let pam = sample_pam(n, loci, missing, MissingPattern::Uniform, &mut rng);
    let matrix = simulate_supermatrix(
        &species,
        loci,
        &SimulateParams::default(),
        Some(&pam),
        &mut rng,
    );
    let terrace = Terrace::from_species_tree_and_pam(&species, &pam).ok()?;
    let mut sink = CollectTrees::with_cap(3_000);
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(3_000, 200_000),
        ..GentriusConfig::default()
    };
    let r = terrace.enumerate(&cfg, &mut sink).ok()?;
    Some(Setup {
        matrix,
        stand: sink.trees,
        complete: r.complete(),
    })
}

#[test]
fn all_stand_trees_have_identical_partitioned_parsimony_scores() {
    let mut interesting = 0;
    for seed in 0..20u64 {
        let Some(s) = setup(seed, 12, 3, 0.4) else {
            continue;
        };
        if s.stand.len() < 2 {
            continue;
        }
        let reference = score(&s.stand[0], &s.matrix, MissingMode::Restrict);
        for t in &s.stand[1..] {
            let sc = score(t, &s.matrix, MissingMode::Restrict);
            assert_eq!(
                sc, reference,
                "seed {seed}: stand trees scored differently — terrace broken"
            );
        }
        interesting += 1;
    }
    assert!(
        interesting >= 8,
        "only {interesting} multi-tree stands tested"
    );
}

#[test]
fn wildcard_and_restricted_scoring_are_equivalent() {
    // For Fitch parsimony the wildcard policy provably equals the
    // restricted-tree policy (wildcard state sets absorb in the fold):
    // parsimony terraces are not an artifact of the restriction
    // convention. Verify the equivalence across stands and random trees.
    let mut rng = ChaCha8Rng::seed_from_u64(2025);
    let mut checked = 0;
    for seed in 0..12u64 {
        let Some(s) = setup(seed, 12, 3, 0.45) else {
            continue;
        };
        for t in s.stand.iter().take(5) {
            assert_eq!(
                score(t, &s.matrix, MissingMode::Wildcard),
                score(t, &s.matrix, MissingMode::Restrict),
                "seed {seed}: policies diverged on a stand tree"
            );
            checked += 1;
        }
        let rand_tree = random_tree_on_n(12, ShapeModel::Uniform, &mut rng);
        assert_eq!(
            score(&rand_tree, &s.matrix, MissingMode::Wildcard),
            score(&rand_tree, &s.matrix, MissingMode::Restrict),
            "seed {seed}: policies diverged on a random tree"
        );
    }
    assert!(checked >= 10, "only {checked} equivalences checked");
}

#[test]
fn stand_trees_have_identical_partitioned_likelihoods_too() {
    // The paper's primary criterion is ML; any scorer that is a function
    // of T|Y_p is constant on the stand — check it for the JC69
    // log-likelihood as well (up to floating-point association noise).
    use gentrius_msa::log_likelihood;
    let mut interesting = 0;
    for seed in 0..14u64 {
        let Some(s) = setup(seed, 12, 3, 0.4) else {
            continue;
        };
        if s.stand.len() < 2 {
            continue;
        }
        let reference = log_likelihood(&s.stand[0], &s.matrix, 0.1, MissingMode::Restrict);
        for t in s.stand.iter().skip(1).take(10) {
            let ll = log_likelihood(t, &s.matrix, 0.1, MissingMode::Restrict);
            for (a, b) in ll.iter().zip(&reference) {
                assert!(
                    (a - b).abs() < 1e-6,
                    "seed {seed}: likelihood terrace broken ({a} vs {b})"
                );
            }
        }
        interesting += 1;
    }
    assert!(interesting >= 6, "only {interesting} stands tested");
}

#[test]
fn off_stand_trees_usually_score_differently() {
    let mut rng = ChaCha8Rng::seed_from_u64(777);
    let mut distinguished = 0;
    let mut trials = 0;
    for seed in 40..60u64 {
        let Some(s) = setup(seed, 12, 3, 0.35) else {
            continue;
        };
        if !s.complete || s.stand.is_empty() {
            continue;
        }
        let reference = score(&s.stand[0], &s.matrix, MissingMode::Restrict);
        // A random tree not on the stand.
        for _ in 0..5 {
            let cand = random_tree_on_n(12, ShapeModel::Uniform, &mut rng);
            if s.stand.iter().any(|t| topo_eq(t, &cand)) {
                continue;
            }
            trials += 1;
            if score(&cand, &s.matrix, MissingMode::Restrict) != reference {
                distinguished += 1;
            }
        }
    }
    assert!(trials >= 20, "too few off-stand candidates ({trials})");
    // Random trees almost always disagree with the data somewhere.
    assert!(
        distinguished * 10 >= trials * 8,
        "only {distinguished}/{trials} off-stand trees distinguished"
    );
}

#[test]
fn stand_trees_score_at_least_as_well_as_random_trees() {
    // The stand contains the generating tree's score class; on clean
    // simulated data that class should be competitive.
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let mut wins = 0;
    let mut trials = 0;
    for seed in 100..112u64 {
        let Some(s) = setup(seed, 12, 3, 0.3) else {
            continue;
        };
        if s.stand.is_empty() {
            continue;
        }
        let stand_total = score(&s.stand[0], &s.matrix, MissingMode::Restrict).total();
        for _ in 0..4 {
            let cand = random_tree_on_n(12, ShapeModel::Uniform, &mut rng);
            trials += 1;
            if stand_total <= score(&cand, &s.matrix, MissingMode::Restrict).total() {
                wins += 1;
            }
        }
    }
    assert!(trials >= 16);
    assert!(wins * 10 >= trials * 7, "stand won only {wins}/{trials}");
}
