//! Property-based tests for the adversarial instance zoo, the mutation
//! fuzzer and the Galton–Watson workload model.
//!
//! Three contracts, each over randomized `(params, seed, index)` draws:
//!
//! 1. every zoo family is a *pure function* of `(params, seed, index)` —
//!    regenerating an instance yields byte-identical text;
//! 2. every applicable fuzz mutant stays well-formed — it parses back
//!    from its own text, keeps the taxon universe, and every constraint
//!    is a binary unrooted tree over known taxa;
//! 3. fitting the GW model is deterministic — identical profiles in,
//!    bit-identical predictions out.

use gentrius_core::GentriusConfig;
use gentrius_datagen::fuzz::{base_dataset, mutate};
use gentrius_datagen::{
    grove_dataset, interaction_dataset, unbalanced_dataset, GroveParams, InteractionParams,
    UnbalancedParams,
};
use gentrius_sim::gw::profile_search;
use gentrius_sim::GwModel;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The per-iteration RNG stream of `run_fuzz`, reproduced here so the
/// property covers the exact mutants the fuzzer would draw.
fn fuzz_iteration_rng(seed: u64, i: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zoo_families_regenerate_byte_identically(
        seed in 0u64..1_000_000,
        index in 0u64..500,
    ) {
        let pairs = [
            unbalanced_dataset(&UnbalancedParams::zoo(), seed, index).to_text(),
            unbalanced_dataset(&UnbalancedParams::zoo(), seed, index).to_text(),
            interaction_dataset(&InteractionParams::zoo(), seed, index).to_text(),
            interaction_dataset(&InteractionParams::zoo(), seed, index).to_text(),
            grove_dataset(&GroveParams::zoo(), seed, index).to_text(),
            grove_dataset(&GroveParams::zoo(), seed, index).to_text(),
        ];
        for pair in pairs.chunks(2) {
            prop_assert_eq!(&pair[0], &pair[1], "regeneration is not byte-identical");
        }
        // Distinct indices draw distinct instances (the streams are
        // index-keyed, not a shared sequence).
        let other = unbalanced_dataset(&UnbalancedParams::zoo(), seed, index + 1).to_text();
        prop_assert!(pairs[0] != other, "index does not key the stream");
    }

    #[test]
    fn fuzz_mutants_stay_well_formed(
        seed in 0u64..1_000_000,
        i in 0u64..64,
    ) {
        let base = base_dataset(seed, i);
        let mut rng = fuzz_iteration_rng(seed, i);
        let Some(mutant) = mutate(&base, &mut rng) else {
            return Ok(()); // no applicable mutation for this draw
        };
        // The taxon universe survives mutation (mutants may add taxa to
        // constraints only from the existing universe).
        prop_assert_eq!(mutant.taxa.len(), base.taxa.len());
        // Every constraint is a well-formed tree over known taxa.
        for t in &mutant.constraints {
            prop_assert!(t.is_binary_unrooted(), "mutant constraint not binary unrooted");
            for taxon in t.taxa().iter() {
                prop_assert!(taxon < mutant.taxa.len(), "constraint names unknown taxon");
            }
        }
        // The text round trip preserves the instance shape (the parser
        // re-numbers taxa by appearance order, so identity is checked at
        // the label level and via the canonical fixed point below).
        let text = mutant.to_text();
        let back = gentrius_datagen::Dataset::from_text(&text)
            .expect("mutant text must parse");
        // The parsed universe only contains taxa some constraint mentions
        // (a dropped leaf may orphan its taxon), never new ones.
        prop_assert!(back.taxa.len() <= mutant.taxa.len());
        prop_assert_eq!(back.constraints.len(), mutant.constraints.len());
        for (a, b) in mutant.constraints.iter().zip(&back.constraints) {
            prop_assert_eq!(a.leaf_count(), b.leaf_count(), "round trip changed a tree size");
            prop_assert!(b.is_binary_unrooted(), "round trip broke a constraint");
        }
        // Re-serialization stays parseable (full canonical convergence is
        // not promised: the parser numbers taxa by appearance order, and
        // serialization order depends on the numbering).
        let again = gentrius_datagen::Dataset::from_text(&back.to_text())
            .expect("re-serialized mutant text must parse");
        prop_assert_eq!(again.constraints.len(), mutant.constraints.len());
        // And the mutation itself is deterministic per (seed, i).
        let again = mutate(&base, &mut fuzz_iteration_rng(seed, i)).expect("same draw applies");
        prop_assert_eq!(mutant.to_text(), again.to_text(), "mutation not deterministic");
    }

    #[test]
    fn gw_fit_is_deterministic(
        seed in 0u64..1_000_000,
        index in 0u64..200,
        budget in 200u64..5_000,
    ) {
        let d = grove_dataset(&GroveParams::zoo(), seed, index);
        let Ok(p) = d.problem() else {
            return Ok(()); // family guarantees validity; belt-and-braces
        };
        let cfg = GentriusConfig::exhaustive();
        let a = profile_search(&p, &cfg, budget).expect("profile");
        let b = profile_search(&p, &cfg, budget).expect("profile");
        prop_assert_eq!(&a, &b, "profiling is not deterministic");
        let ma = GwModel::fit(&a);
        let mb = GwModel::fit(&b);
        let pa = ma.predict_counts();
        let pb = mb.predict_counts();
        prop_assert_eq!(pa.stand_trees.to_bits(), pb.stand_trees.to_bits());
        prop_assert_eq!(pa.intermediate_states.to_bits(), pb.intermediate_states.to_bits());
        prop_assert_eq!(pa.dead_ends.to_bits(), pb.dead_ends.to_bits());
        prop_assert_eq!(pa.band.to_bits(), pb.band.to_bits());
        for t in [2usize, 4, 8] {
            prop_assert_eq!(
                ma.predict_speedup(t).to_bits(),
                mb.predict_speedup(t).to_bits(),
                "speedup prediction not deterministic at {} threads", t
            );
        }
    }
}
