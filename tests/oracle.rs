//! Cross-crate oracle tests: Gentrius (serial, parallel, simulated) versus
//! brute-force enumeration of all topologies.

use gentrius_core::{
    CollectNewick, GentriusConfig, InitialTreeRule, MappingMode, StandProblem, StoppingRules,
    TaxonOrderRule,
};
use gentrius_parallel::{run_parallel, ParallelConfig};
use gentrius_sim::{simulate, SimConfig};
use phylo::enumerate::for_each_topology;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::newick::to_newick;
use phylo::ops::{displays, restrict};
use phylo::taxa::{TaxonId, TaxonSet};
use phylo::BitSet;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Brute-force stand: all topologies on the union taxa displaying every
/// constraint, as canonical Newick strings.
fn brute_force_stand(problem: &StandProblem, taxa: &TaxonSet) -> Vec<String> {
    let ids: Vec<TaxonId> = problem
        .all_taxa()
        .iter()
        .map(|t| TaxonId(t as u32))
        .collect();
    let mut out = Vec::new();
    for_each_topology(problem.universe(), &ids, |t| {
        if problem.constraints().iter().all(|c| displays(t, c)) {
            out.push(to_newick(t, taxa));
        }
    });
    out.sort();
    out
}

/// Generates a random problem: a hidden source tree on `n ≤ 8` taxa,
/// restricted to `m` random (≥4-taxon) subsets covering all taxa.
fn random_problem(n: usize, m: usize, rng: &mut ChaCha8Rng) -> (TaxonSet, StandProblem) {
    let taxa = TaxonSet::with_synthetic(n);
    loop {
        let source = random_tree_on_n(n, ShapeModel::Uniform, rng);
        let mut columns = Vec::with_capacity(m);
        let mut covered = BitSet::new(n);
        for _ in 0..m {
            let k = rng.gen_range(4..=n.min(6));
            let mut subset = BitSet::new(n);
            while subset.count() < k {
                subset.insert(rng.gen_range(0..n));
            }
            covered.union_with(&subset);
            columns.push(subset);
        }
        if covered.count() != n {
            continue; // resample until every taxon appears somewhere
        }
        let constraints: Vec<_> = columns.iter().map(|c| restrict(&source, c)).collect();
        if let Ok(p) = StandProblem::from_constraints(constraints) {
            return (taxa, p);
        }
    }
}

fn gentrius_stand(problem: &StandProblem, taxa: &TaxonSet, config: &GentriusConfig) -> Vec<String> {
    let mut sink = CollectNewick::with_cap(taxa, 1_000_000);
    let r = gentrius_core::run_serial(problem, config, &mut sink).expect("run");
    assert!(r.complete(), "oracle instances must enumerate fully");
    assert_eq!(r.stats.stand_trees as usize, sink.out.len());
    sink.out.sort();
    sink.out
}

#[test]
fn serial_matches_brute_force_on_random_instances() {
    let mut rng = ChaCha8Rng::seed_from_u64(12345);
    for trial in 0..25 {
        let n = rng.gen_range(6..=8);
        let m = rng.gen_range(2..=4);
        let (taxa, problem) = random_problem(n, m, &mut rng);
        let expected = brute_force_stand(&problem, &taxa);
        let got = gentrius_stand(&problem, &taxa, &GentriusConfig::exhaustive());
        assert_eq!(got, expected, "trial {trial} (n={n}, m={m})");
    }
}

#[test]
fn heuristic_variants_agree_with_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(777);
    let (taxa, problem) = random_problem(8, 3, &mut rng);
    let expected = brute_force_stand(&problem, &taxa);
    for initial in [InitialTreeRule::MaxOverlap, InitialTreeRule::Index(1)] {
        for order in [TaxonOrderRule::Dynamic, TaxonOrderRule::ById] {
            for mapping in [MappingMode::Recompute, MappingMode::Incremental] {
                let cfg = GentriusConfig {
                    initial_tree: initial.clone(),
                    taxon_order: order.clone(),
                    mapping,
                    stopping: StoppingRules::unlimited(),
                };
                let got = gentrius_stand(&problem, &taxa, &cfg);
                assert_eq!(
                    got, expected,
                    "initial={initial:?} order={order:?} mapping={mapping:?}"
                );
            }
        }
    }
}

#[test]
fn parallel_and_sim_match_oracle_counts() {
    let mut rng = ChaCha8Rng::seed_from_u64(31415);
    for trial in 0..8 {
        let (taxa, problem) = random_problem(8, 3, &mut rng);
        let expected = brute_force_stand(&problem, &taxa).len() as u64;
        let serial = gentrius_stand(&problem, &taxa, &GentriusConfig::exhaustive()).len() as u64;
        assert_eq!(serial, expected, "trial {trial}");
        let par = run_parallel(
            &problem,
            &GentriusConfig::exhaustive(),
            &ParallelConfig::with_threads(3),
        )
        .expect("parallel");
        assert_eq!(par.stats.stand_trees, expected, "trial {trial} parallel");
        let sim = simulate(
            &problem,
            &GentriusConfig::exhaustive(),
            &SimConfig::with_threads(5),
        )
        .expect("sim");
        assert_eq!(sim.stats.stand_trees, expected, "trial {trial} sim");
    }
}
