//! The whole reproduction as one pipeline: generate a dataset suite to
//! disk, load it back, enumerate stands with all engines, cross-validate
//! with SUPERB where possible, and score the stand against a simulated
//! supermatrix — every crate touching every other through their public
//! file formats, not in-memory shortcuts.

use gentrius_core::{CollectTrees, CountOnly, GentriusConfig, StoppingRules};
use gentrius_datagen::{simulated_dataset, Dataset, MissingPattern, SimulatedParams};
use gentrius_msa::{compress, score, simulate_supermatrix, MissingMode, SimulateParams};
use gentrius_parallel::{run_parallel, ParallelConfig};
use gentrius_sim::{simulate, SimConfig};
use gentrius_superb::{superb_count, SuperbInputError};
use phylo::taxa::TaxonSet;

fn bounded() -> GentriusConfig {
    GentriusConfig {
        stopping: StoppingRules::counts(50_000, 300_000),
        ..GentriusConfig::default()
    }
}

#[test]
fn generate_save_load_enumerate_crossvalidate_score() {
    let dir = std::env::temp_dir().join("gentrius-full-pipeline");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // 1. Generate and persist a small suite.
    let params = SimulatedParams {
        taxa: (10, 14),
        loci: (3, 5),
        missing: (0.3, 0.45),
        pattern: MissingPattern::Uniform,
        shape: phylo::generate::ShapeModel::Uniform,
    };
    for i in 0..6u64 {
        let d = simulated_dataset(&params, 2026, i);
        d.save(&dir.join(format!("{}.dataset", d.name)))
            .expect("save");
    }

    // 2. Load the suite back through the file format.
    let suite = Dataset::load_suite(&dir).expect("load suite");
    assert_eq!(suite.len(), 6);

    let mut engines_checked = 0;
    let mut superb_checked = 0;
    let mut scored = 0;
    for d in &suite {
        let p = d.problem().expect("valid dataset");
        let serial = gentrius_core::run_serial(&p, &bounded(), &mut CountOnly).expect("serial");
        if !serial.complete() {
            continue;
        }

        // 3. All engines agree.
        let par = run_parallel(&p, &bounded(), &ParallelConfig::with_threads(2)).expect("par");
        let sim = simulate(&p, &bounded(), &SimConfig::with_threads(8)).expect("sim");
        assert_eq!(par.stats, serial.stats, "{}", d.name);
        assert_eq!(sim.stats, serial.stats, "{}", d.name);
        engines_checked += 1;

        // 4. SUPERB cross-validation where it can run.
        match superb_count(&p) {
            Ok(s) => {
                assert_eq!(s, serial.stats.stand_trees as u128, "{}", d.name);
                superb_checked += 1;
            }
            Err(SuperbInputError::NoComprehensiveTaxon) => {}
            Err(SuperbInputError::Count(_)) => {}
        }

        // 5. Terrace scores on a simulated supermatrix for this dataset.
        if serial.stats.stand_trees >= 2 && serial.stats.stand_trees <= 500 {
            let species = d.species_tree.as_ref().expect("generated dataset");
            let pam = d.pam.as_ref().expect("generated dataset");
            let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(9);
            let matrix = simulate_supermatrix(
                species,
                pam.loci(),
                &SimulateParams::default(),
                Some(pam),
                &mut rng,
            );
            let mut sink = CollectTrees::with_cap(500);
            let r = gentrius_core::run_serial(&p, &bounded(), &mut sink).expect("enumerate");
            assert!(r.complete());
            let compressed = compress(&matrix);
            let reference = score(&sink.trees[0], &matrix, MissingMode::Restrict);
            for t in &sink.trees {
                let s = compressed.parsimony(t, &matrix, MissingMode::Restrict);
                assert_eq!(s, reference, "{}: terrace broken", d.name);
            }
            scored += 1;
        }
    }
    assert!(engines_checked >= 4, "engines checked on {engines_checked}");
    assert!(scored >= 1, "no dataset reached the scoring stage");
    // superb_checked may be 0 if no suite member has a comprehensive
    // taxon; exercise the negative path at least.
    let _ = superb_checked;

    // 6. The CLI-facing text formats round-trip the supermatrix too.
    let taxa = TaxonSet::with_synthetic(8);
    let mut rng4 = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(4);
    let tree =
        phylo::generate::random_tree_on_n(8, phylo::generate::ShapeModel::Uniform, &mut rng4);
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(5);
    let m = simulate_supermatrix(&tree, 2, &SimulateParams::default(), None, &mut rng);
    let (phy, parts) = m.to_phylip(&taxa);
    let mut taxa2 = TaxonSet::new();
    let m2 = gentrius_msa::Supermatrix::parse_phylip(&phy, &parts, &mut taxa2).expect("parse");
    assert_eq!(m, m2);
}
