//! Umbrella crate for the gentrius-rs workspace.
//!
//! Re-exports the public APIs of the member crates so the examples and
//! integration tests can use a single import root.

pub use gentrius_core as core;
pub use gentrius_datagen as datagen;
pub use gentrius_msa as msa;
pub use gentrius_parallel as parallel;
pub use gentrius_sim as sim;
pub use gentrius_superb as superb;
pub use phylo;
