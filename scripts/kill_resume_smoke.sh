#!/usr/bin/env bash
# Kill/resume smoke: SIGKILL a checkpointed `gentrius stand` run mid-
# flight, resume it from the .standckpt sidecar until the enumeration
# completes, and require the stitched container to hold exactly the same
# stand set as an uninterrupted run. This is the cross-process durability
# gate — the in-process differential lives in tests/checkpoint_resume.rs.
#
# Usage: scripts/kill_resume_smoke.sh [BINARY]
#   BINARY defaults to target/release/gentrius (built if missing).
set -euo pipefail

BIN="${1:-target/release/gentrius}"
if [[ ! -x "$BIN" ]]; then
  echo "building $BIN"
  cargo build --release -p gentrius-cli
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/gentrius-kill-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# A blow-up instance: ~480k stand trees, a couple of seconds of release
# work — plenty of room for a 100 ms checkpoint cadence to fire several
# times before the SIGKILL lands.
cat > "$WORK/trees.nwk" <<'EOF'
((A,B),(C,D));
((A,E),(F,G));
((C,F),(H,I));
((B,H),(J,K));
((D,G),(I,K));
EOF

echo "== clean reference run =="
"$BIN" stand --trees "$WORK/trees.nwk" --threads 2 --output "$WORK/clean.stand"

echo "== checkpointed run, SIGKILL mid-flight =="
"$BIN" stand --trees "$WORK/trees.nwk" --threads 2 \
  --output "$WORK/kill.stand" --checkpoint-every 0.1 &
PID=$!
sleep 0.6
if kill -9 "$PID" 2>/dev/null; then
  echo "sent SIGKILL to $PID"
else
  echo "run finished before the kill landed (machine too fast?)" >&2
  wait "$PID" || true
fi
wait "$PID" || true

CKPT="$WORK/kill.standckpt"
if [[ -f "$CKPT" ]]; then
  echo "== resuming from $CKPT =="
  slices=0
  while [[ -f "$CKPT" ]]; do
    slices=$((slices + 1))
    if (( slices > 50 )); then
      echo "FAIL: resume did not converge after $slices slices" >&2
      exit 1
    fi
    "$BIN" stand resume "$CKPT" --threads 2
  done
  echo "resume converged after $slices slice(s)"
elif [[ ! -f "$WORK/kill.stand" ]]; then
  echo "FAIL: killed run left neither a checkpoint nor a container" >&2
  exit 1
fi

echo "== comparing stand sets =="
"$BIN" stand cat "$WORK/clean.stand" | sort > "$WORK/clean.txt"
"$BIN" stand cat "$WORK/kill.stand" | sort > "$WORK/kill.txt"
if ! cmp -s "$WORK/clean.txt" "$WORK/kill.txt"; then
  echo "FAIL: resumed stand set diverges from the clean run" >&2
  diff "$WORK/clean.txt" "$WORK/kill.txt" | head -20 >&2
  exit 1
fi

leftovers="$(find "$WORK" -name 'kill.stand.*seg*' -o -name '*.standckpt*' | wc -l)"
if (( leftovers != 0 )); then
  echo "FAIL: $leftovers sidecar file(s) survived completion" >&2
  find "$WORK" -name 'kill.stand.*seg*' -o -name '*.standckpt*' >&2
  exit 1
fi

echo "PASS: $(wc -l < "$WORK/clean.txt") trees, byte-identical after kill/resume"
