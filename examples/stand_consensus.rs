//! Stand consensus: summarize what an entire stand agrees on.
//!
//! ```text
//! cargo run --release --example stand_consensus
//! ```
//!
//! The paper's §I motivation is that a single inferred tree may be "one of
//! many equally good solutions". This example enumerates a stand while
//! streaming split frequencies (no tree storage), then prints the strict
//! and majority-rule consensus trees and the per-branch support of the
//! original species tree — the actionable answer to "which branches of my
//! published tree are real?"

use gentrius_core::{GentriusConfig, SplitSupportSink, StoppingRules, Terrace};
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use phylo::generate::ShapeModel;
use phylo::newick::to_newick;
use phylo::TaxonId;

fn main() {
    let params = SimulatedParams {
        taxa: (16, 16),
        loci: (5, 5),
        missing: (0.45, 0.5),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    let dataset = simulated_dataset(&params, 424_242, 3);
    let species = dataset.species_tree.as_ref().expect("generated with tree");
    let taxa = &dataset.taxa;
    println!(
        "dataset {}: {} taxa, {} loci, {:.1}% missing",
        dataset.name,
        dataset.num_taxa(),
        dataset.num_loci(),
        100.0 * dataset.missing_fraction()
    );
    println!("published tree: {}", to_newick(species, taxa));

    let terrace = Terrace::from_constraint_trees(dataset.constraints.clone()).expect("valid");
    let mut sink = SplitSupportSink::new();
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(2_000_000, 20_000_000),
        ..GentriusConfig::default()
    };
    let result = terrace.enumerate(&cfg, &mut sink).expect("run");
    let summary = sink.finish();

    println!();
    println!(
        "stand: {} trees ({})",
        summary.num_trees(),
        if result.complete() {
            "fully enumerated"
        } else {
            "truncated by a stopping rule"
        }
    );
    if let Some(strict) = summary.strict_consensus() {
        println!("strict consensus:   {}", to_newick(&strict, taxa));
    }
    if let Some(maj) = summary.majority_consensus() {
        println!("majority consensus: {}", to_newick(&maj, taxa));
    }

    println!();
    println!("branch support of the published tree across the stand:");
    for (split, support) in summary.branch_support(species) {
        let names: Vec<&str> = split
            .side()
            .iter()
            .map(|t| taxa.name(TaxonId(t as u32)))
            .collect();
        let marker = if (support - 1.0).abs() < 1e-12 {
            "resolved  "
        } else if support >= 0.5 {
            "majority  "
        } else {
            "UNRELIABLE"
        };
        println!(
            "  {marker} {:>6.1}%  {{{}}}",
            100.0 * support,
            names.join(",")
        );
    }
    println!();
    println!(
        "{:.0}% of the published tree's internal branches hold across the whole stand.",
        100.0 * summary.resolved_fraction(species)
    );
}
