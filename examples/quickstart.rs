//! Quickstart: enumerate the stand of a small set of incomplete trees.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Two gene trees disagree about nothing but cover different taxa; the
//! stand is every complete species tree consistent with both. This is the
//! paper's input mode 1 (a set of unrooted incomplete constraint trees).

use gentrius_core::{CollectNewick, GentriusConfig, Terrace};
use phylo::newick::parse_forest;

fn main() {
    // Two partially-overlapping gene trees (locus 1 lacks E,F; locus 2
    // lacks A,B).
    let inputs = ["((A,B),(C,D));", "((C,D),(E,F));"];
    let (taxa, trees) = parse_forest(inputs).expect("valid Newick");
    println!("constraint trees:");
    for s in &inputs {
        println!("  {s}");
    }

    let terrace = Terrace::from_constraint_trees(trees).expect("valid constraints");
    let mut sink = CollectNewick::with_cap(&taxa, 1000);
    let result = terrace
        .enumerate(&GentriusConfig::exhaustive(), &mut sink)
        .expect("enumeration runs");

    println!();
    println!("stand size:          {}", result.stats.stand_trees);
    println!("intermediate states: {}", result.stats.intermediate_states);
    println!("dead ends:           {}", result.stats.dead_ends);
    println!("complete:            {}", result.complete());
    println!();
    println!("stand trees:");
    for t in &sink.out {
        println!("  {t}");
    }
}
