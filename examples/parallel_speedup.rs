//! Parallel speedup demo: the real thread-pool engine on the host's cores,
//! cross-validated against the virtual-time simulator at paper-scale
//! thread counts.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use gentrius_core::GentriusConfig;
use gentrius_datagen::scenario::long_runner;
use gentrius_parallel::{run_parallel, ParallelConfig};
use gentrius_sim::{simulate, SimConfig};

fn main() {
    let dataset = long_runner(0);
    let problem = dataset.problem().expect("valid dataset");
    let config = GentriusConfig {
        stopping: gentrius_core::StoppingRules::counts(200_000, 2_000_000),
        ..GentriusConfig::default()
    };
    println!(
        "dataset {}: {} taxa, {} loci, {:.1}% missing",
        dataset.name,
        dataset.num_taxa(),
        dataset.num_loci(),
        100.0 * dataset.missing_fraction()
    );

    // -------- real threads (bounded by the host's cores) --------
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!();
    println!("real thread-pool engine (host has {hw} hardware threads):");
    println!(
        "{:>8} {:>10} {:>12} {:>9} {:>8}",
        "threads", "time (s)", "trees", "speedup", "stolen"
    );
    let mut t1 = None;
    for threads in [1, 2, hw.min(4)] {
        let r = run_parallel(&problem, &config, &ParallelConfig::with_threads(threads))
            .expect("parallel run");
        let secs = r.elapsed.as_secs_f64();
        let sp = t1.map(|t: f64| t / secs).unwrap_or(1.0);
        println!(
            "{:>8} {:>10.3} {:>12} {:>9.2} {:>8}",
            threads, secs, r.stats.stand_trees, sp, r.stolen_tasks
        );
        if t1.is_none() {
            t1 = Some(secs);
        }
    }

    // -------- virtual time (any thread count, deterministic) --------
    println!();
    println!("virtual-time simulator (paper-scale thread counts):");
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>8}",
        "threads", "ticks", "trees", "speedup", "stolen"
    );
    let serial = simulate(&problem, &config, &SimConfig::with_threads(1)).expect("sim");
    for threads in [1usize, 2, 4, 8, 12, 16] {
        let r = simulate(&problem, &config, &SimConfig::with_threads(threads)).expect("sim");
        println!(
            "{:>8} {:>12} {:>12} {:>9.2} {:>8}",
            threads,
            r.makespan,
            r.stats.stand_trees,
            r.speedup_vs(&serial),
            r.tasks_stolen
        );
    }
    // -------- schedule visualization --------
    let mut traced = SimConfig::with_threads(8);
    traced.trace = true;
    let r = simulate(&problem, &config, &traced).expect("sim");
    if let Some(tl) = &r.timeline {
        println!();
        println!("8-thread schedule ('#' busy, '.' idle, '|' task boundary):");
        print!("{}", tl.render(r.makespan, 64));
    }

    println!();
    println!("the wall-clock table is capped by the host's core count; the");
    println!("virtual-time table reproduces the paper's 16-thread scaling shape.");
}
