//! Gentrius vs the SUPERB prior art, side by side.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```
//!
//! The paper's §I story in one run: on datasets with a comprehensive taxon
//! both algorithms agree exactly (two independent implementations is the
//! strongest correctness evidence); on typical missing-data inputs SUPERB
//! cannot even root, while Gentrius proceeds.

use gentrius_core::{CountOnly, GentriusConfig, StoppingRules};
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_superb::{comprehensive_taxon, superb_count, SuperbInputError};
use phylo::generate::ShapeModel;

fn main() {
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(500_000, 2_000_000),
        ..GentriusConfig::default()
    };

    println!("comprehensive-core datasets (SUPERB can root):");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>8}",
        "dataset", "taxa", "gentrius", "superb", "agree"
    );
    let core = SimulatedParams {
        taxa: (10, 18),
        loci: (3, 6),
        missing: (0.3, 0.5),
        pattern: MissingPattern::ComprehensiveCore,
        shape: ShapeModel::Uniform,
    };
    let mut shown = 0;
    for i in 0..40u64 {
        if shown >= 6 {
            break;
        }
        let d = simulated_dataset(&core, 7, i);
        let Ok(p) = d.problem() else { continue };
        let g = gentrius_core::run_serial(&p, &cfg, &mut CountOnly).expect("run");
        if !g.complete() {
            continue;
        }
        let Ok(s) = superb_count(&p) else { continue };
        println!(
            "{:<14} {:>6} {:>12} {:>12} {:>8}",
            d.name,
            d.num_taxa(),
            g.stats.stand_trees,
            s,
            s == g.stats.stand_trees as u128
        );
        shown += 1;
    }

    println!();
    println!("typical missing-data datasets (40-55% missing, uniform):");
    let gen = SimulatedParams {
        taxa: (12, 22),
        loci: (4, 7),
        missing: (0.4, 0.55),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    let mut cannot = 0;
    let mut can = 0;
    for i in 0..40u64 {
        let d = simulated_dataset(&gen, 8, i);
        let Ok(p) = d.problem() else { continue };
        match comprehensive_taxon(&p) {
            None => {
                cannot += 1;
                assert!(matches!(
                    superb_count(&p),
                    Err(SuperbInputError::NoComprehensiveTaxon)
                ));
            }
            Some(_) => can += 1,
        }
    }
    println!(
        "  SUPERB cannot root {cannot} of {} datasets; Gentrius runs on all.",
        cannot + can
    );
    println!();
    println!("this is the paper's motivation: prior tools require a comprehensive");
    println!("taxon to root the input; Gentrius operates directly on unrooted trees.");
}
