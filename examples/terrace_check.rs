//! Terrace check: is a published species tree just one of many equally
//! good trees?
//!
//! ```text
//! cargo run --release --example terrace_check
//! ```
//!
//! The paper's motivation (§I): when a multi-locus alignment has missing
//! data, the inferred tree may sit on a *stand/terrace* of trees that are
//! indistinguishable under the scoring criterion. This example takes a
//! "published" species tree plus a presence–absence matrix (input mode 2),
//! counts the stand, and reports how topologically diverse it is.

use gentrius_core::{CollectTrees, GentriusConfig, Terrace};
use gentrius_datagen::{simulated_dataset, SimulatedParams};
use phylo::distance::rf_distance_normalized;
use phylo::generate::ShapeModel;
use phylo::newick::to_newick;

fn main() {
    // A seeded "published analysis": 18 taxa, 5 loci, ~40% missing data.
    let params = SimulatedParams {
        taxa: (18, 18),
        loci: (5, 5),
        missing: (0.40, 0.45),
        pattern: gentrius_datagen::MissingPattern::Uniform,
        shape: ShapeModel::Yule,
    };
    let dataset = simulated_dataset(&params, 2023, 1);
    let species = dataset
        .species_tree
        .as_ref()
        .expect("generated with a tree");
    let pam = dataset.pam.as_ref().expect("generated with a PAM");

    println!("dataset: {}", dataset.name);
    println!(
        "  {} taxa, {} loci, {:.1}% missing data",
        dataset.num_taxa(),
        dataset.num_loci(),
        100.0 * dataset.missing_fraction()
    );
    println!(
        "  comprehensive taxa (in all loci): {}",
        pam.comprehensive_taxa().count()
    );
    println!("  published tree: {}", to_newick(species, &dataset.taxa));

    let terrace = Terrace::from_species_tree_and_pam(species, pam).expect("valid input");
    let mut sink = CollectTrees::with_cap(5000);
    let result = terrace
        .enumerate(&GentriusConfig::exhaustive(), &mut sink)
        .expect("enumeration runs");

    println!();
    if result.stats.stand_trees == 1 {
        println!("the published tree is alone on its stand — no terrace effect.");
        return;
    }
    println!(
        "the published tree is one of {} equally-compatible trees!",
        result.stats.stand_trees
    );

    // How different can the alternatives be?
    let mut max_rf = 0.0f64;
    let mut sum_rf = 0.0f64;
    let mut n = 0usize;
    for t in &sink.trees {
        if let Some(d) = rf_distance_normalized(t, species) {
            max_rf = max_rf.max(d);
            sum_rf += d;
            n += 1;
        }
    }
    println!(
        "normalized Robinson–Foulds distance to the published tree: mean {:.3}, max {:.3} (over {} trees)",
        sum_rf / n.max(1) as f64,
        max_rf,
        n
    );
    println!();
    println!("a stand this size means branch support and downstream conclusions");
    println!("should be conditioned on the whole stand, not the single tree.");
}
