//! Missing-data study: how stand size explodes with the proportion of
//! missing data (§I: 68% of RAxML Grove datasets have missing data, 19%
//! above 30% — exactly the regime where stands matter).
//!
//! ```text
//! cargo run --release --example missing_data_study
//! ```
//!
//! One fixed species tree; PAMs of increasing missingness; stand size,
//! states and dead ends per level, with the paper-default stopping rules
//! scaled down so the sweep finishes in seconds.

use gentrius_core::{GentriusConfig, StoppingRules, Terrace};
use gentrius_datagen::{sample_pam, MissingPattern};
use phylo::generate::{random_tree_on_n, ShapeModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 20;
    let loci = 6;
    let tree = random_tree_on_n(n, ShapeModel::Uniform, &mut ChaCha8Rng::seed_from_u64(7));
    println!("fixed species tree on {n} taxa, {loci} loci");
    println!();
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>10}",
        "missing", "stand size", "intermediate", "dead ends", "status"
    );

    for pct in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + (pct * 100.0) as u64);
        let pam = sample_pam(n, loci, pct, MissingPattern::Uniform, &mut rng);
        let terrace = Terrace::from_species_tree_and_pam(&tree, &pam).expect("valid");
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(1_000_000, 10_000_000),
            ..GentriusConfig::default()
        };
        let r = terrace.count(&cfg).expect("run");
        println!(
            "{:>7.0}% {:>12} {:>14} {:>10} {:>10}",
            100.0 * pam.missing_fraction(),
            r.stats.stand_trees,
            r.stats.intermediate_states,
            r.stats.dead_ends,
            if r.complete() {
                "complete"
            } else {
                "truncated"
            }
        );
    }
    println!();
    println!("low missingness pins every taxon: the stand is the tree itself.");
    println!("as coverage thins, more insertion positions become admissible and");
    println!("the stand grows — eventually past the stopping rules (rule 1/2).");
}
