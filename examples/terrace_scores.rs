//! The terrace, made visible: every stand tree has the same parsimony
//! score on the supermatrix it came from.
//!
//! ```text
//! cargo run --release --example terrace_scores
//! ```
//!
//! Simulates sequences on a species tree, blanks species×locus blocks per
//! a PAM, enumerates the stand of the species tree, and scores stand
//! members plus random off-stand trees with partitioned Fitch parsimony —
//! the paper's §I claim ("the trees from one stand have identical score"),
//! demonstrated end to end.

use gentrius_core::{CollectTrees, GentriusConfig, StoppingRules, Terrace};
use gentrius_datagen::{sample_pam, MissingPattern};
use gentrius_msa::{score, simulate_supermatrix, MissingMode, SimulateParams};
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::split::topo_eq;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 14;
    let loci = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(20230614);
    let species = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
    let pam = sample_pam(n, loci, 0.4, MissingPattern::Uniform, &mut rng);
    let matrix = simulate_supermatrix(
        &species,
        loci,
        &SimulateParams {
            sites_per_partition: 80,
            mutation_prob: 0.1,
        },
        Some(&pam),
        &mut rng,
    );
    println!(
        "supermatrix: {n} taxa x {} sites, {loci} partitions, {:.1}% missing",
        matrix.sites(),
        100.0 * pam.missing_fraction()
    );

    let terrace = Terrace::from_species_tree_and_pam(&species, &pam).expect("valid");
    let mut sink = CollectTrees::with_cap(2000);
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(2000, 500_000),
        ..GentriusConfig::default()
    };
    let result = terrace.enumerate(&cfg, &mut sink).expect("run");
    println!(
        "stand: {} trees ({})",
        result.stats.stand_trees,
        if result.complete() {
            "complete"
        } else {
            "truncated"
        }
    );

    println!("\nper-partition parsimony scores of stand members:");
    println!("{:<12} {:>30} {:>8}", "tree", "per-partition", "total");
    for (i, t) in sink.trees.iter().take(6).enumerate() {
        let s = score(t, &matrix, MissingMode::Restrict);
        println!(
            "stand #{:<4} {:>30} {:>8}",
            i,
            format!("{:?}", s.per_partition),
            s.total()
        );
    }
    let reference = score(&sink.trees[0], &matrix, MissingMode::Restrict);
    let all_equal = sink
        .trees
        .iter()
        .all(|t| score(t, &matrix, MissingMode::Restrict) == reference);
    println!(
        "\nall {} collected stand trees score identically: {all_equal}",
        sink.trees.len()
    );

    println!("\nrandom trees off the stand, for contrast:");
    let mut shown = 0;
    while shown < 4 {
        let cand = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
        if sink.trees.iter().any(|t| topo_eq(t, &cand)) {
            continue;
        }
        let s = score(&cand, &matrix, MissingMode::Restrict);
        println!(
            "random #{:<3} {:>30} {:>8}",
            shown,
            format!("{:?}", s.per_partition),
            s.total()
        );
        shown += 1;
    }
    println!("\nidentical scores on the stand are why identifying it matters:");
    println!("tree search cannot distinguish its members, and analyses must");
    println!("treat the whole stand — not one member — as the result.");
}
